"""Unit tests for the persistent observability archive (repro.obs.store).

Covers the durability rules the module docstring promises: segment
rotation by size and age, restart-safe numbering, torn-tail tolerance,
retention deletion, 60s-exact compaction, per-request trace journals,
and the query/trace/capacity read paths.
"""

import json

import pytest

from repro.obs.metrics import AlertTransition, SeriesBank
from repro.obs.store import (
    ObsStore,
    ObsStoreError,
    query_series,
    read_archive,
    read_trace_journal,
    rebuild_alerts,
    rebuild_bank,
    rebuild_export,
    render_query_prom,
    render_query_table,
    render_trace,
)
from repro.telemetry.journal import parse_journal


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt
        return self.now


def make_store(tmp_path, clock=None, **kwargs):
    kwargs.setdefault("rotate_bytes", 1 << 20)
    kwargs.setdefault("rotate_seconds", 1e9)
    kwargs.setdefault("retain_seconds", 1e12)
    kwargs.setdefault("compact_after", 1e12)
    return ObsStore(
        tmp_path / "obs", clock=clock or FakeClock(), **kwargs
    )


def feed(store, bank, clock, ticks, names=("a", "b"), labels=("", "x")):
    """Drive identical observations into the live bank and the store."""
    for i in range(ticks):
        t = clock.advance(1.0)
        points = []
        for name in names:
            for label in labels:
                value = float(i * 7 + hash((name, label)) % 13)
                bank.observe(name, t, value, label=label, label_key="tenant")
                points.append((name, label, "tenant", t, value))
        store.append_sample(t, points)


# -- write / read round trip ---------------------------------------------------


def test_round_trip_rebuild_is_bit_equal(tmp_path):
    clock = FakeClock()
    store = make_store(tmp_path, clock)
    bank = SeriesBank()
    feed(store, bank, clock, ticks=30)
    store.close()
    archive = read_archive(tmp_path / "obs")
    assert archive.torn_segments == 0
    rebuilt = rebuild_bank(archive)
    assert rebuilt.export() == bank.export()


def test_rebuild_export_carries_recorder_meta(tmp_path):
    clock = FakeClock()
    store = ObsStore(
        tmp_path / "obs",
        meta={"interval": 0.25, "resolutions": [1.0, 10.0, 60.0],
              "capacity": 120},
        clock=clock,
    )
    bank = SeriesBank()
    feed(store, bank, clock, ticks=3)
    store.close()
    export = rebuild_export(read_archive(tmp_path / "obs"))
    assert export["interval"] == 0.25
    assert export["samples"] == 3
    assert export["series"] == bank.export()


def test_alert_round_trip(tmp_path):
    store = make_store(tmp_path)
    original = AlertTransition(
        rule="queue_saturated",
        label="",
        state="firing",
        value=0.97,
        threshold=0.9,
        at=1003.0,
        description="queue is nearly full",
    )
    store.append_alert(original)
    store.close()
    transitions = rebuild_alerts(read_archive(tmp_path / "obs"))
    assert [t.to_dict() for t in transitions] == [original.to_dict()]


def test_events_are_archived_with_store_timestamps(tmp_path):
    clock = FakeClock(500.0)
    store = make_store(tmp_path, clock)
    store.append_event({"type": "queued", "id": "job-1", "trace": "abc"})
    store.close()
    archive = read_archive(tmp_path / "obs")
    assert len(archive.events) == 1
    assert archive.events[0]["at"] == 500.0
    assert archive.events[0]["event"]["trace"] == "abc"


# -- rotation / restart --------------------------------------------------------


def test_rotation_by_size(tmp_path):
    clock = FakeClock()
    store = make_store(tmp_path, clock, rotate_bytes=1024)
    bank = SeriesBank()
    feed(store, bank, clock, ticks=50)
    store.close()
    archive = read_archive(tmp_path / "obs")
    assert archive.segments > 1
    # rotation is invisible to reconstruction
    assert rebuild_bank(archive).export() == bank.export()


def test_rotation_by_age(tmp_path):
    clock = FakeClock()
    store = make_store(tmp_path, clock, rotate_seconds=5.0)
    bank = SeriesBank()
    feed(store, bank, clock, ticks=12)
    store.close()
    archive = read_archive(tmp_path / "obs")
    assert archive.segments >= 2
    assert rebuild_bank(archive).export() == bank.export()


def test_restart_continues_segment_numbering(tmp_path):
    clock = FakeClock()
    store = make_store(tmp_path, clock)
    store.append_event({"type": "serve-started"})
    store.close()
    again = make_store(tmp_path, clock)
    again.append_event({"type": "serve-started"})
    again.close()
    names = sorted(
        p.name for p in (tmp_path / "obs" / "segments").iterdir()
    )
    assert names == ["seg-000001.jsonl", "seg-000002.jsonl"]
    archive = read_archive(tmp_path / "obs")
    assert archive.segments == 2
    assert len(archive.events) == 2


def test_rejects_tiny_rotate_bytes(tmp_path):
    with pytest.raises(ObsStoreError):
        ObsStore(tmp_path / "obs", rotate_bytes=10)


def test_read_archive_rejects_non_archive_dir(tmp_path):
    with pytest.raises(ObsStoreError):
        read_archive(tmp_path)


# -- torn tails ----------------------------------------------------------------


def _truncate_last_line(path, keep_bytes=7):
    raw = path.read_bytes()
    cut = raw.rstrip(b"\n").rfind(b"\n")
    path.write_bytes(raw[: cut + 1 + keep_bytes])


def test_torn_tail_recovers_records_before_the_tear(tmp_path):
    clock = FakeClock()
    store = make_store(tmp_path, clock)
    bank = SeriesBank()
    feed(store, bank, clock, ticks=10)
    # crash: no close(), then the last line is half-written
    segment = next((tmp_path / "obs" / "segments").iterdir())
    _truncate_last_line(segment)
    archive = read_archive(tmp_path / "obs")
    assert archive.torn_segments == 1
    assert archive.sample_count() == 9  # everything before the tear
    expected = SeriesBank()
    replayed = 0
    for record in archive.samples:
        for name, label, label_key, t, value in record["points"]:
            expected.observe(name, t, value, label=label, label_key=label_key)
            replayed += 1
    assert replayed > 0
    assert rebuild_bank(archive).export() == expected.export()


def test_garbage_line_counts_as_torn_not_fatal(tmp_path):
    store = make_store(tmp_path)
    store.append_event({"type": "queued", "id": "j"})
    segment = next((tmp_path / "obs" / "segments").iterdir())
    with open(segment, "a", encoding="utf-8") as fh:
        fh.write("{this is not json\n")
    archive = read_archive(tmp_path / "obs")
    assert archive.torn_segments == 1
    assert len(archive.events) == 1


# -- retention / compaction ----------------------------------------------------


def test_retention_deletes_expired_segments(tmp_path):
    clock = FakeClock()
    store = make_store(tmp_path, clock, retain_seconds=100.0)
    store.append_event({"type": "old"})
    store.rotate()
    clock.advance(500.0)
    store.append_event({"type": "new"})
    stats = store.maintain()
    assert stats["deleted"] == 1
    store.close()
    archive = read_archive(tmp_path / "obs")
    kinds = [e["event"]["type"] for e in archive.events]
    assert kinds == ["new"]


def test_compaction_keeps_60s_ring_bit_equal(tmp_path):
    clock = FakeClock()
    store = make_store(tmp_path, clock, rotate_bytes=2048)
    bank = SeriesBank()
    # several minutes of ticks so multiple 60s windows commit,
    # spread across several segments
    feed(store, bank, clock, ticks=300, names=("m",), labels=("", "t1"))
    store.rotate()  # close the tail so every sample is compactable
    assert store.compact_all() > 0
    store.close()
    archive = read_archive(tmp_path / "obs")
    rebuilt = rebuild_bank(archive)
    for label in ("", "t1"):
        live = bank.get("m", label).export()["60.0"]
        cold = rebuilt.get("m", label).export()["60.0"]
        assert cold == live
    # compaction dropped intermediate refreshers
    assert archive.headers[0].get("compacted") is True


def test_compaction_is_idempotent(tmp_path):
    clock = FakeClock()
    store = make_store(tmp_path, clock)
    bank = SeriesBank()
    feed(store, bank, clock, ticks=200, names=("m",), labels=("",))
    store.rotate()
    store.compact_all()
    first = read_archive(tmp_path / "obs").samples
    store.compact_all()
    second = read_archive(tmp_path / "obs").samples
    store.close()
    assert first == second


# -- trace journals ------------------------------------------------------------


def _journal_records(n, start_seq=1):
    return [
        {"t": "span", "seq": start_seq + i, "kind": "open", "id": i + 1,
         "name": "vmexit", "cycles": 100 * i}
        for i in range(n)
    ]


def test_trace_journal_clean_close_parses_strictly(tmp_path):
    store = make_store(tmp_path)
    writer = store.job_journal("abc123", meta={"job": "job-1", "app": "top"})
    writer.extend(_journal_records(3), dropped=0)
    writer.extend(_journal_records(2, start_seq=4), dropped=1)
    writer.close()
    store.close()
    parsed = parse_journal(
        (tmp_path / "obs" / "traces" / "abc123.jsonl")
        .read_text()
        .splitlines()
    )
    assert parsed.meta["job"] == "job-1"
    assert len(parsed.records) == 5
    assert parsed.dropped == 1
    assert parsed.complete
    got_meta, got_records, torn = read_trace_journal(
        tmp_path / "obs", "abc123"
    )
    assert got_meta["app"] == "top"
    assert len(got_records) == 5
    assert torn is False


def test_trace_journal_torn_tail_recovers(tmp_path):
    store = make_store(tmp_path)
    writer = store.job_journal("tearme", meta={"job": "job-2"})
    writer.extend(_journal_records(4), dropped=0)
    # crash: never closed, last line half-written
    path = tmp_path / "obs" / "traces" / "tearme.jsonl"
    _truncate_last_line(path)
    store.close()
    meta, records, torn = read_trace_journal(tmp_path / "obs", "tearme")
    assert torn is True
    assert meta["job"] == "job-2"
    assert len(records) == 3


def test_trace_id_is_sanitized_for_filenames(tmp_path):
    store = make_store(tmp_path)
    writer = store.job_journal("../evil/../../id", meta={})
    writer.close()
    store.close()
    names = [p.name for p in (tmp_path / "obs" / "traces").iterdir()]
    assert names == [".._evil_.._.._id.jsonl"]


def test_empty_trace_id_gets_no_journal(tmp_path):
    store = make_store(tmp_path)
    assert store.job_journal("", meta={}) is None
    store.close()


# -- queries -------------------------------------------------------------------


def test_query_series_narrows_and_renders(tmp_path):
    clock = FakeClock()
    store = make_store(tmp_path, clock)
    bank = SeriesBank()
    feed(store, bank, clock, ticks=20)
    store.close()
    result = query_series(tmp_path / "obs", name="a", label="x")
    assert sorted(result["series"]) == ["a"]
    assert sorted(result["series"]["a"]["series"]) == ["x"]
    assert result["archive"]["samples"] == 20
    table = render_query_table(result)
    assert "a" in table and "20 sample tick(s)" in table
    prom = render_query_prom(result)
    assert prom.startswith("# HELP") or "repro_" in prom
    with pytest.raises(ObsStoreError):
        query_series(tmp_path / "obs", name="nope")


def test_query_series_time_window(tmp_path):
    clock = FakeClock()
    store = make_store(tmp_path, clock)
    bank = SeriesBank()
    feed(store, bank, clock, ticks=20, names=("m",), labels=("",))
    store.close()
    result = query_series(
        tmp_path / "obs", name="m", since=1005.0, until=1010.0
    )
    points = result["series"]["m"]["series"][""]["1.0"]["points"]
    assert points
    assert all(1005.0 <= t <= 1010.0 for t, _ in points)


def test_render_trace_unknown_id_raises(tmp_path):
    store = make_store(tmp_path)
    store.append_event({"type": "queued", "id": "j", "trace": "other"})
    store.close()
    with pytest.raises(ObsStoreError):
        render_trace(tmp_path / "obs", "missing")


def test_render_trace_joins_events_alerts_and_spans(tmp_path):
    clock = FakeClock(2000.0)
    store = make_store(tmp_path, clock)
    trace = "feedface" * 4
    store.append_event(
        {"type": "queued", "id": "job-1", "job": "top#0", "app": "top",
         "tenant": "acme", "trace": trace, "priority": 0}
    )
    clock.advance(0.5)
    store.append_event(
        {"type": "start", "id": "job-1", "job": "top#0", "app": "top",
         "tenant": "acme", "trace": trace}
    )
    store.append_alert(
        AlertTransition(
            rule="queue_saturated", label="", state="firing", value=0.95,
            threshold=0.9, at=clock.now, description="hot",
        )
    )
    clock.advance(1.0)
    store.append_event(
        {"type": "done", "id": "job-1", "job": "top#0", "tenant": "acme",
         "trace": trace, "cycles": 12345, "ok": True}
    )
    writer = store.job_journal(trace, meta={"job": "job-1"})
    writer.extend(
        [
            {"t": "span", "seq": 1, "kind": "open", "id": 1, "parent": None,
             "name": "vmexit", "cycles": 0,
             "attrs": {"trace": trace, "kind": "ADDRESS_TRAP", "rip": 1}},
            {"t": "span", "seq": 2, "kind": "close", "id": 1, "cycles": 50},
        ],
        dropped=0,
    )
    writer.close()
    store.close()
    out = render_trace(tmp_path / "obs", trace)
    assert trace in out
    assert "request lifecycle" in out
    assert "queued" in out and "started" in out and "finished" in out
    assert "alerts while in flight" in out
    assert "queue_saturated" in out
    assert "span forest" in out


def test_json_lines_are_compact_and_sorted(tmp_path):
    store = make_store(tmp_path)
    store.append_event({"type": "queued", "id": "j"})
    store.close()
    segment = next((tmp_path / "obs" / "segments").iterdir())
    for line in segment.read_text().splitlines():
        record = json.loads(line)
        assert line == json.dumps(
            record, separators=(",", ":"), sort_keys=True
        )
