"""Snapshot/fork: bit-identity with fresh boots and CoW isolation."""

import pytest

from repro.apps.base import launch
from repro.apps.catalog import APP_CATALOG
from repro.core.facechange import FaceChange
from repro.fleet.snapshot import MachineSnapshot, SnapshotError
from repro.guest.machine import boot_machine
from repro.kernel.runtime import Platform


def _run_top(machine, seed=1234, scale=2):
    handle = launch(machine, "top", APP_CATALOG["top"], scale=scale, seed=seed)
    machine.run(
        until=lambda: handle.finished,
        max_cycles=machine.cycles + 60_000_000_000,
        step_budget=50_000,
    )
    assert handle.finished
    return (machine.cycles, machine.runtime.syscalls_executed)


@pytest.fixture(scope="module")
def snapshot():
    return boot_machine(platform=Platform.KVM).snapshot()


def test_clone_matches_fresh_boot_bit_identically(snapshot):
    clone_score = _run_top(snapshot.fork())
    fresh_score = _run_top(boot_machine(platform=Platform.KVM))
    assert clone_score == fresh_score


def test_sibling_clones_are_independent_and_identical(snapshot):
    a, b = snapshot.fork(), snapshot.fork()
    score_a = _run_top(a)
    # a has run a full workload; b must be unaffected
    score_b = _run_top(b)
    assert score_a == score_b
    assert a.runtime is not b.runtime
    assert a.physmem is not b.physmem


def test_clone_writes_do_not_reach_base_or_later_forks(snapshot):
    marker = b"cow-isolation-marker"
    dirty = snapshot.fork()
    dirty.physmem.write(0x1000, marker)
    assert dirty.physmem.read(0x1000, len(marker)) == marker
    clean = snapshot.fork()
    assert clean.physmem.read(0x1000, len(marker)) != marker


def test_clones_share_base_frames_until_written(snapshot):
    from repro.memory.layout import PAGE_SIZE

    hpfn = min(snapshot._base_frames)  # a frame the boot image populated
    addr = hpfn * PAGE_SIZE
    clone = snapshot.fork()
    # reading alone must not materialize a private copy of a base frame
    before = clone.physmem.read(addr, 64)
    private_before = len(clone.physmem._frames)
    assert hpfn not in clone.physmem._frames
    clone.physmem.write(addr, b"x")
    assert len(clone.physmem._frames) == private_before + 1
    # the CoW copy starts from the base content, not zeros
    assert clone.physmem.read(addr, 64) == b"x" + bytes(before[1:])


def test_clone_supports_facechange_enforcement(snapshot):
    from repro.core.profiler import Profiler

    profiling = boot_machine(platform=Platform.QEMU)
    profiler = Profiler(profiling)
    profiler.track("top")
    profiler.install()
    handle = launch(profiling, "top", APP_CATALOG["top"], scale=2)
    handle.run_to_completion(max_cycles=60_000_000_000)
    config = profiler.export("top")

    clone = snapshot.fork()
    fc = FaceChange(clone)
    fc.enable()
    fc.load_view(config, comm="top")
    score = _run_top(clone)
    assert score[1] > 0
    assert fc.stats.view_switches > 0 or fc.stats.context_switch_traps > 0


def test_capture_refuses_machine_with_user_tasks():
    machine = boot_machine(platform=Platform.KVM)
    launch(machine, "top", APP_CATALOG["top"], scale=1)
    with pytest.raises(SnapshotError, match="user tasks"):
        MachineSnapshot.capture(machine)


def test_capture_refuses_machine_with_facechange_attached():
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    with pytest.raises(SnapshotError):
        MachineSnapshot.capture(machine)


def test_capture_refuses_unbooted_machine():
    from repro.guest.machine import Machine

    with pytest.raises(SnapshotError, match="booted"):
        MachineSnapshot.capture(Machine())


def test_source_machine_stays_usable_after_capture():
    machine = boot_machine(platform=Platform.KVM)
    snap = machine.snapshot()
    source_score = _run_top(machine)
    clone_score = _run_top(snap.fork())
    assert source_score == clone_score
