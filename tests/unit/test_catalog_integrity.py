"""Catalog integrity: every reference in the kernel function graph resolves.

These tests catch the class of bugs where a catalog body names a callee,
predicate, action or dispatch slot that nothing defines -- which would
otherwise only explode deep inside a workload run.
"""

from repro.isa.assembler import (
    Act,
    Assembler,
    Call,
    Cond,
    Dispatch,
    Jump,
    NameRegistry,
    While,
)
from repro.kernel.catalog import BASE_FUNCTIONS, MODULES
from repro.kernel.registry import REGISTRY
from repro.kernel.syscalls import SYSCALL_TABLE
from repro.malware.rootkits import ADORE_FUNCTIONS, KBEAST_FUNCTIONS, SEBEK_FUNCTIONS

ALL_BODIES = (
    list(BASE_FUNCTIONS)
    + [fn for fns in MODULES.values() for fn in fns]
    + list(KBEAST_FUNCTIONS)
    + list(SEBEK_FUNCTIONS)
    + list(ADORE_FUNCTIONS)
)


def _walk(stmts):
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, (Cond, While)):
            yield from _walk(stmt.body)


def test_no_duplicate_function_names():
    names = [b.name for b in ALL_BODIES]
    assert len(names) == len(set(names))


def test_every_call_target_defined():
    defined = {b.name for b in ALL_BODIES}
    for body in ALL_BODIES:
        for stmt in _walk(body.stmts):
            if isinstance(stmt, (Call, Jump)):
                assert stmt.target in defined, (
                    f"{body.name} references undefined {stmt.target!r}"
                )


def test_every_predicate_registered():
    for body in ALL_BODIES:
        for stmt in _walk(body.stmts):
            if isinstance(stmt, (Cond, While)):
                assert stmt.pred in REGISTRY.predicates, (
                    f"{body.name} uses unregistered predicate {stmt.pred!r}"
                )


def test_every_action_registered():
    for body in ALL_BODIES:
        for stmt in _walk(body.stmts):
            if isinstance(stmt, Act):
                assert stmt.action in REGISTRY.actions, (
                    f"{body.name} uses unregistered action {stmt.action!r}"
                )


def test_every_slot_registered():
    for body in ALL_BODIES:
        for stmt in _walk(body.stmts):
            if isinstance(stmt, Dispatch):
                assert stmt.slot in REGISTRY.slots, (
                    f"{body.name} uses unregistered slot {stmt.slot!r}"
                )


def test_syscall_table_handlers_exist():
    defined = {b.name for b in ALL_BODIES}
    for name, handler in SYSCALL_TABLE.items():
        assert handler in defined, f"syscall {name!r} -> missing {handler!r}"


def test_all_functions_have_frames():
    """The stack walker and the signature search assume framed functions."""
    for body in ALL_BODIES:
        assert body.frame, f"{body.name} lacks a frame"


def test_module_functions_do_not_call_later_modules():
    """Load order: jbd2 -> ext4 -> e1000; no forward references."""
    order = {name: i for i, name in enumerate(MODULES)}
    owner = {}
    for name, fns in MODULES.items():
        for fn in fns:
            owner[fn.name] = name
    base_names = {b.name for b in BASE_FUNCTIONS}
    for name, fns in MODULES.items():
        for body in fns:
            for stmt in _walk(body.stmts):
                if isinstance(stmt, (Call, Jump)):
                    if stmt.target in base_names:
                        continue
                    target_mod = owner[stmt.target]
                    assert order[target_mod] <= order[name]


def test_catalog_assembles_cleanly():
    asm = Assembler(NameRegistry())
    for body in ALL_BODIES:
        assembled = asm.assemble(body)
        assert assembled.size > 0
