"""Subsystem state-machine unit tests with a minimal stub runtime."""

import pytest

from repro.kernel.objects import (
    File,
    Pipe,
    Socket,
    SyscallContext,
    Task,
    TaskState,
)
from repro.kernel.subsys import EAGAIN, EBADF, FsState, NetState, TtyState
from repro.memory.paging import GuestPageTable


class StubSignals:
    @staticmethod
    def pending_raw(task):
        return bool(task.pending_signals)


class StubRt:
    """Just enough runtime for exercising subsystem methods directly."""

    def __init__(self):
        self.fs = FsState()
        self.net = NetState()
        self.tty = TtyState()
        self.signals = StubSignals()
        self.current = Task(1, "stub", GuestPageTable(), 0xC8002000)
        self.pending_signal_op = None
        self._cycles = 0
        self.woken = []

    @property
    def cycles(self):
        return self._cycles

    @property
    def ctx(self):
        return self.current.syscall

    @property
    def scratch(self):
        return self.current.syscall.scratch

    def arg(self, name, default=None):
        return self.current.syscall.args.get(name, default)

    def ret(self, value):
        self.current.syscall.retval = value

    def block_current(self, queue):
        queue.add(self.current)
        self.current.state = TaskState.BLOCKED

    def wake_queue(self, queue):
        for task in list(queue.waiters):
            queue.remove(task)
            task.state = TaskState.RUNNABLE
            self.woken.append(task)

    def refresh_next_event(self):
        pass

    def syscall(self, name, **args):
        self.current.syscall = SyscallContext(name, args)
        return self.current.syscall


@pytest.fixture()
def rt():
    return StubRt()


class TestFsClassification:
    @pytest.mark.parametrize(
        "path,kind",
        [
            ("/proc/stat", "proc"),
            ("/proc/1/status", "proc"),
            ("/dev/tty1", "tty"),
            ("/dev/pts/0", "tty"),
            ("/dev/console", "tty"),
            ("/dev/urandom", "dev"),
            ("/dev/snd/pcmC0D0p", "dev"),
            ("/etc/passwd", "ext4"),
            ("/var/www/index.html", "ext4"),
        ],
    )
    def test_classify(self, rt, path, kind):
        assert rt.fs.classify(path) == kind

    def test_open_op_by_path(self, rt):
        rt.syscall("open", path="/proc/meminfo")
        assert rt.fs.open_op(rt) == "proc_reg_open"
        rt.syscall("open", path="/data/x")
        assert rt.fs.open_op(rt) == "ext4_file_open"

    def test_read_write_ops_by_fd_kind(self, rt):
        pipe = Pipe(1)
        fd = rt.current.alloc_fd(File("pipe_r", "p", pipe))
        rt.syscall("read", fd=fd)
        assert rt.fs.read_op(rt) == "pipe_read"
        sock = Socket(1, "inet", "stream")
        sfd = rt.current.alloc_fd(File("socket", "s", sock))
        rt.syscall("read", fd=sfd)
        assert rt.fs.read_op(rt) == "sock_aio_read"
        rt.syscall("write", fd=sfd)
        assert rt.fs.write_op(rt) == "sock_aio_write"

    def test_release_op_table(self, rt):
        fd = rt.current.alloc_fd(File("tty", "/dev/tty1"))
        rt.syscall("close", fd=fd)
        assert rt.fs.release_op(rt) == "tty_release"


class TestFsRefcounting:
    def test_release_only_on_last_reference(self, rt):
        pipe = Pipe(1)
        file = File("pipe_w", "p", pipe)
        file.refcount = 2
        rt.fs.release_file(rt, file)
        assert pipe.writers == 1
        rt.fs.release_file(rt, file)
        assert pipe.writers == 0

    def test_dup2_bumps_refcount(self, rt):
        file = File("ext4", "/x")
        fd = rt.current.alloc_fd(file)
        rt.syscall("dup2", oldfd=fd, newfd=9)
        rt.fs.do_dup2(rt)
        assert file.refcount == 2
        assert rt.current.fd_table[9] is file

    def test_dup2_releases_displaced(self, rt):
        pipe = Pipe(1)
        displaced = File("pipe_w", "p", pipe)
        rt.current.fd_table[9] = displaced
        file = File("ext4", "/x")
        fd = rt.current.alloc_fd(file)
        rt.syscall("dup2", oldfd=fd, newfd=9)
        rt.fs.do_dup2(rt)
        assert pipe.writers == 0

    def test_dup2_bad_fd(self, rt):
        rt.syscall("dup2", oldfd=99, newfd=1)
        rt.fs.do_dup2(rt)
        assert rt.ctx.retval == EBADF


class TestPipeSemantics:
    def setup_pipe(self, rt):
        rt.syscall("pipe")
        rt.fs.pipe_create(rt)
        rfd, wfd = rt.ctx.retval
        return rfd, wfd, rt.current.fd_table[rfd].obj

    def test_create_returns_fd_pair(self, rt):
        rfd, wfd, pipe = self.setup_pipe(rt)
        assert rt.current.fd_table[rfd].kind == "pipe_r"
        assert rt.current.fd_table[wfd].kind == "pipe_w"

    def test_read_eof_when_no_writers(self, rt):
        rfd, wfd, pipe = self.setup_pipe(rt)
        pipe.writers = 0
        rt.syscall("read", fd=rfd, count=100)
        assert not rt.fs.pipe_read_wait(rt)
        rt.fs.pipe_do_read(rt)
        assert rt.ctx.retval == 0

    def test_read_waits_while_writer_open(self, rt):
        rfd, wfd, pipe = self.setup_pipe(rt)
        rt.syscall("read", fd=rfd, count=100)
        assert rt.fs.pipe_read_wait(rt)

    def test_signal_interrupts_wait(self, rt):
        rfd, wfd, pipe = self.setup_pipe(rt)
        rt.current.pending_signals.append(15)
        rt.syscall("read", fd=rfd, count=100)
        assert not rt.fs.pipe_read_wait(rt)

    def test_write_wakes_reader(self, rt):
        rfd, wfd, pipe = self.setup_pipe(rt)
        other = Task(2, "other", GuestPageTable(), 0xC8004000)
        pipe.wait_read.add(other)
        other.state = TaskState.BLOCKED
        rt.syscall("write", fd=wfd, count=64)
        rt.fs.pipe_do_write(rt)
        assert rt.ctx.retval == 64
        assert pipe.count == 64
        assert other in rt.woken

    def test_write_to_closed_readers_is_epipe(self, rt):
        rfd, wfd, pipe = self.setup_pipe(rt)
        pipe.readers = 0
        rt.syscall("write", fd=wfd, count=64)
        rt.fs.pipe_do_write(rt)
        assert rt.ctx.retval == -32


class TestNetTables:
    def make_socket(self, rt, family="inet", stype="stream", **kw):
        rt.syscall("socket", family=family, stype=stype, **kw)
        rt.net.do_create(rt)
        rt.net.do_install_fd(rt)
        fd = rt.ctx.retval
        return fd, rt.current.fd_table[fd].obj

    def test_create_install(self, rt):
        fd, sock = self.make_socket(rt)
        assert sock.family == "inet" and sock.stype == "stream"

    @pytest.mark.parametrize(
        "family,stype,send,recv",
        [
            ("inet", "stream", "tcp_sendmsg", "tcp_recvmsg"),
            ("inet", "dgram", "udp_sendmsg", "sock_common_recvmsg"),
            ("unix", "stream", "unix_stream_sendmsg", "unix_stream_recvmsg"),
            ("packet", "dgram", "packet_sendmsg", "packet_recvmsg"),
        ],
    )
    def test_sendmsg_recvmsg_dispatch(self, rt, family, stype, send, recv):
        fd, sock = self.make_socket(rt, family=family, stype=stype)
        rt.syscall("send", fd=fd, count=10)
        assert rt.net.sendmsg_op(rt) == send
        rt.syscall("recv", fd=fd, count=10)
        assert rt.net.recvmsg_op(rt) == recv

    def test_bind_registers_port(self, rt):
        fd, sock = self.make_socket(rt)
        rt.syscall("bind", fd=fd, port=8080)
        rt.net.do_bind(rt)
        assert rt.net.ports[8080] is sock

    def test_accept_nonblocking_empty_queue(self, rt):
        fd, sock = self.make_socket(rt, nonblocking=True)
        sock.listening = True
        rt.syscall("accept", fd=fd)
        assert not rt.net.accept_wait(rt)
        rt.net.do_accept(rt)
        rt.net.do_install_fd(rt)
        assert rt.ctx.retval == EAGAIN

    def test_recv_consumes_bytes(self, rt):
        fd, sock = self.make_socket(rt)
        sock.rx_bytes = 500
        sock.rx_packets = 1
        rt.syscall("recv", fd=fd, count=200)
        rt.net.do_recv(rt)
        assert rt.ctx.retval == 200
        assert sock.rx_bytes == 300

    def test_autobind_assigns_ephemeral_port(self, rt):
        fd, sock = self.make_socket(rt, stype="dgram")
        rt.syscall("sendto", fd=fd, count=10)
        rt.net.do_autobind(rt)
        assert sock.bound_port is not None
        assert sock.bound_port >= 32768


class TestTty:
    def test_input_cook_wake(self, rt):
        rt.tty.inject_keystrokes(0, 5)
        assert rt.tty.kbd_irq_due(0)
        rt.tty.on_input(rt)
        assert rt.tty.raw == 5
        waiter = Task(3, "sh", GuestPageTable(), 0xC8006000)
        rt.tty.wait_input.add(waiter)
        waiter.state = TaskState.BLOCKED
        rt.tty.cook(rt)
        assert rt.tty.cooked == 5
        assert waiter in rt.woken

    def test_read_consumes_cooked(self, rt):
        rt.tty.cooked = 10
        rt.syscall("read", fd=3, count=4)
        rt.tty.do_read(rt)
        assert rt.ctx.retval == 4
        assert rt.tty.cooked == 6

    def test_sniffers_observe_cook(self, rt):
        observed = []
        rt.tty.sniffers.append(lambda _rt, n: observed.append(n))
        rt.tty.inject_keystrokes(0, 3)
        rt.tty.on_input(rt)
        rt.tty.cook(rt)
        assert observed == [3]

    def test_out_op_pty_vs_console(self, rt):
        fd = rt.current.alloc_fd(File("tty", "/dev/pts/0"))
        rt.syscall("write", fd=fd, count=10)
        assert rt.tty.out_op(rt) == "pty_write"
        fd2 = rt.current.alloc_fd(File("tty", "/dev/tty1"))
        rt.syscall("write", fd=fd2, count=10)
        assert rt.tty.out_op(rt) == "con_write"
