"""Fleet spec validation, runner modes, crash isolation, determinism."""

import pytest

from repro.fleet import (
    FleetSpec,
    FleetSpecError,
    ProfileLibrary,
    prepare_offline_phase,
    run_fleet,
)
from repro.fleet.jobs import execute_job
from repro.fleet.runner import FleetRunner
from repro.fleet.spec import FleetJob, derive_seed, uniform_spec
from repro.guest.machine import boot_machine
from repro.kernel.runtime import Platform


# ---------------------------------------------------------------------------
# spec validation
# ---------------------------------------------------------------------------


def test_spec_from_dict_assigns_unique_job_names():
    spec = FleetSpec.from_dict(
        {"jobs": [{"app": "top"}, {"app": "top"}, {"app": "gzip"}]}
    )
    assert [j.name for j in spec.jobs] == ["top#0", "top#1", "gzip#0"]


def test_spec_rejects_unknown_app():
    with pytest.raises(FleetSpecError, match="unknown application"):
        FleetSpec.from_dict({"jobs": [{"app": "nosuch"}]})


def test_spec_rejects_unknown_attack():
    with pytest.raises(FleetSpecError, match="unknown malware"):
        FleetSpec.from_dict({"jobs": [{"app": "top", "attack": "nosuch"}]})


def test_spec_rejects_attack_host_mismatch():
    with pytest.raises(FleetSpecError, match="infects"):
        FleetSpec.from_dict({"jobs": [{"app": "gzip", "attack": "Injectso"}]})


def test_spec_rejects_empty_jobs_and_bad_keys():
    with pytest.raises(FleetSpecError, match="non-empty"):
        FleetSpec.from_dict({"jobs": []})
    with pytest.raises(FleetSpecError, match="unknown spec keys"):
        FleetSpec.from_dict({"jobs": [{"app": "top"}], "bogus": 1})
    with pytest.raises(FleetSpecError, match="unknown keys"):
        FleetSpec.from_dict({"jobs": [{"app": "top", "bogus": 1}]})


def test_spec_json_round_trip(tmp_path):
    spec = FleetSpec.from_dict(
        {"name": "rt", "workers": 3, "seed": 99,
         "jobs": [{"app": "top", "scale": 5}]}
    )
    path = tmp_path / "spec.json"
    import json

    path.write_text(json.dumps(spec.to_dict()))
    loaded = FleetSpec.load(path)
    assert loaded.name == "rt"
    assert loaded.workers == 3
    assert loaded.seed == 99
    assert loaded.jobs[0].scale == 5


def test_derived_seeds_are_stable_and_distinct():
    assert derive_seed(1, "top#0") == derive_seed(1, "top#0")
    assert derive_seed(1, "top#0") != derive_seed(1, "top#1")
    assert derive_seed(1, "top#0") != derive_seed(2, "top#0")
    spec = FleetSpec.from_dict({"jobs": [{"app": "top", "seed": 42}]})
    assert spec.jobs[0].effective_seed(spec.seed) == 42


# ---------------------------------------------------------------------------
# runner (shared library fixture keeps this fast)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def library(tmp_path_factory):
    lib = ProfileLibrary(tmp_path_factory.mktemp("fleet-lib"))
    prepare_offline_phase(lib, ["top", "gzip"], scale=2)
    return lib


def test_serial_and_threaded_runs_agree(library):
    spec = uniform_spec(["top", "gzip"], scale=2, workers=1)
    serial = run_fleet(spec, library)
    spec2 = uniform_spec(["top", "gzip"], scale=2, workers=2)
    threaded = run_fleet(spec2, library, use_processes=False)
    assert serial.mode == "serial"
    assert threaded.mode == "threads"
    assert serial.failed == threaded.failed == 0
    serial_scores = {r["name"]: (r["cycles"], r["syscalls"]) for r in serial.results}
    thread_scores = {r["name"]: (r["cycles"], r["syscalls"]) for r in threaded.results}
    assert serial_scores == thread_scores


def test_same_job_twice_has_identical_telemetry(library):
    """Fleet-determinism regression: one job run twice, telemetry diffed."""
    snapshot = boot_machine(platform=Platform.KVM).snapshot()
    job = FleetJob(app="top", scale=2, name="top#0")
    record = library.get("top")
    first = execute_job(snapshot.fork(), job, record)
    second = execute_job(snapshot.fork(), job, record)
    assert first.score == second.score
    assert first.telemetry["counters"] == second.telemetry["counters"]
    assert first.telemetry["labelled_counters"] == second.telemetry["labelled_counters"]
    assert first.telemetry["histograms"] == second.telemetry["histograms"]


def test_worker_crash_fails_job_not_fleet(library, monkeypatch):
    import repro.fleet.runner as runner_mod

    real_execute = runner_mod.execute_job

    def exploding(machine, job, record, base_seed=0):
        if job.app == "gzip":
            raise RuntimeError("simulated guest crash")
        return real_execute(machine, job, record, base_seed=base_seed)

    monkeypatch.setattr(runner_mod, "execute_job", exploding)
    spec = uniform_spec(["top", "gzip"], scale=2, workers=2)
    report = run_fleet(spec, library, use_processes=False)
    by_name = {r["name"]: r for r in report.results}
    assert by_name["top#0"]["ok"]
    assert not by_name["gzip#0"]["ok"]
    assert "simulated guest crash" in by_name["gzip#0"]["error"]
    assert report.failed == 1


def test_missing_profile_is_a_library_error(library):
    from repro.fleet import ProfileLibraryError

    spec = uniform_spec(["bash"], scale=1, workers=1)
    with pytest.raises(ProfileLibraryError, match="bash"):
        FleetRunner(spec, library).run()


def test_report_merges_fleet_telemetry(library):
    spec = uniform_spec(["top"], scale=2, workers=1, repeat=2)
    report = run_fleet(spec, library)
    single = next(r for r in report.results if r["name"] == "top#0")
    merged = report.telemetry
    assert merged["sources"] == 2
    # two identical guests: merged counters are exactly double
    for name, value in single["telemetry"]["counters"].items():
        assert merged["counters"][name] == 2 * value
    summary = report.format_summary()
    assert "2/2 jobs completed" in summary


def test_exhausted_cycle_budget_fails_job(library):
    spec = FleetSpec(
        jobs=[FleetJob(app="top", scale=2, max_cycles=1_000)], workers=1
    )
    report = run_fleet(spec, library)
    assert report.failed == 1
    assert "budget" in report.results[0]["error"]
