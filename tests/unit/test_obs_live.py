"""Live fleet view: state machine, drift detection, stall reporting."""

from repro.obs import LiveFleetView


def _heartbeat(name, recoveries, verdicts=None, cycles=0):
    return {
        "type": "heartbeat",
        "job": name,
        "cycles": cycles,
        "recoveries": recoveries,
        "verdicts": verdicts or {},
    }


def test_lifecycle_state_transitions():
    view = LiveFleetView()
    view.expect("top#0", app="top")
    assert view.jobs["top#0"].state == "pending"
    notices = view.update({"type": "start", "job": "top#0", "app": "top"}, now=1.0)
    assert notices == ["[fleet] top#0: started"]
    assert view.jobs["top#0"].state == "running"
    view.update(_heartbeat("top#0", 2, cycles=500), now=2.0)
    assert view.jobs["top#0"].cycles == 500
    notices = view.update(
        {"type": "done", "job": "top#0", "ok": True, "cycles": 900}, now=3.0
    )
    assert notices == ["[fleet] top#0: done"]
    status = view.jobs["top#0"]
    assert status.state == "done" and status.cycles == 900


def test_failed_job_keeps_first_error_line():
    view = LiveFleetView()
    view.update(
        {"type": "done", "job": "gzip#0", "ok": False,
         "error": "boom\ntraceback..."},
        now=1.0,
    )
    status = view.jobs["gzip#0"]
    assert status.state == "failed"
    assert view.notices[-1] == "[fleet] gzip#0: FAILED boom"


def test_drift_flagged_once_and_only_past_threshold():
    view = LiveFleetView(baselines={"gzip#0": 5}, drift_factor=2.0, drift_margin=3)
    view.expect("gzip#0", app="gzip")
    # threshold = 2*5+3 = 13; at the threshold is still fine
    assert view.update(_heartbeat("gzip#0", 13), now=1.0) == []
    notices = view.update(_heartbeat("gzip#0", 14), now=2.0)
    assert len(notices) == 1
    assert "PROFILE DRIFT" in notices[0]
    assert "re-profile gzip" in notices[0]
    assert view.drifting() == ["gzip#0"]
    # flagged exactly once, even as the count keeps growing
    assert view.update(_heartbeat("gzip#0", 50), now=3.0) == []


def test_captured_attacks_do_not_count_toward_drift():
    view = LiveFleetView(baselines={"bash#0": 0}, drift_factor=2.0, drift_margin=3)
    msg = _heartbeat(
        "bash#0", 20, verdicts={"captured-attack": 18, "anomalous": 2}
    )
    assert view.update(msg, now=1.0) == []
    assert view.jobs["bash#0"].non_attack_recoveries == 2
    assert view.drifting() == []


def test_no_baseline_means_no_drift_check():
    view = LiveFleetView(baselines={})
    assert view.update(_heartbeat("top#0", 10_000), now=1.0) == []
    assert view.drifting() == []


def test_journal_segments_accumulate():
    view = LiveFleetView()
    view.update(
        {"type": "journal", "job": "top#0",
         "records": [{"seq": 1}, {"seq": 3}], "dropped": 1},
        now=1.0,
    )
    view.update(
        {"type": "journal", "job": "top#0", "records": [{"seq": 4}],
         "dropped": 0},
        now=2.0,
    )
    status = view.jobs["top#0"]
    assert status.journal_records == 3
    assert status.journal_dropped == 1
    assert "dropped=1" in view.render(now=2.0)


def test_stall_detection_only_for_running_jobs():
    view = LiveFleetView(stall_after=5.0)
    view.update({"type": "start", "job": "slow#0"}, now=0.0)
    view.update({"type": "start", "job": "fast#0"}, now=0.0)
    view.update({"type": "done", "job": "fast#0", "ok": True}, now=1.0)
    assert view.stalled(now=6.0) == ["slow#0"]
    rendered = view.render(now=6.0)
    slow_line = next(ln for ln in rendered.splitlines() if "slow#0" in ln)
    assert "STALLED" in slow_line
    fast_line = next(ln for ln in rendered.splitlines() if "fast#0" in ln)
    assert "STALLED" not in fast_line


def test_render_lists_every_expected_job():
    view = LiveFleetView()
    view.expect("a#0", app="top")
    view.expect("b#0", app="gzip")
    rendered = view.render(now=0.0)
    assert "a#0" in rendered and "b#0" in rendered
    assert "pending" in rendered


# ---------------------------------------------------------------------------
# serve-daemon event folding (repro ctl watch)
# ---------------------------------------------------------------------------


def test_queued_event_registers_pending_job():
    view = LiveFleetView()
    notices = view.update(
        {"type": "queued", "id": "job-0001", "job": "top#0", "app": "top"},
        now=1.0,
    )
    assert notices == ["[fleet] top#0: queued"]
    assert view.jobs["top#0"].state == "pending"


def test_cancelled_event_is_terminal_with_note():
    view = LiveFleetView()
    view.update({"type": "queued", "job": "top#0", "app": "top"}, now=0.0)
    notices = view.update(
        {"type": "cancelled", "job": "top#0",
         "error": "cancelled while queued"},
        now=1.0,
    )
    assert notices == ["[fleet] top#0: CANCELLED"]
    status = view.jobs["top#0"]
    assert status.state == "cancelled"
    assert status.note == "cancelled while queued"


def test_rejected_event_creates_no_job_row():
    view = LiveFleetView()
    notices = view.update(
        {"type": "rejected", "app": "top", "tenant": "acme",
         "reason": "queue-full", "error": "queue is full (64 queued)"},
        now=1.0,
    )
    assert len(notices) == 1
    assert "rejected (queue-full)" in notices[0]
    assert view.jobs == {}


def test_serve_lifecycle_events_are_notices_only():
    view = LiveFleetView()
    started = view.update(
        {"type": "serve-started", "pid": 42, "variants": ["a", "b"]}, now=0.0
    )
    assert started == ["[serve] started (2 warm variant(s))"]
    scaled = view.update({"type": "scaled", "workers": 3, "pressure": 7}, now=1.0)
    assert scaled == ["[serve] scaled workers to 3 (pressure 7)"]
    stopped = view.update({"type": "serve-stopped", "drained": True}, now=2.0)
    assert stopped == ["[serve] stopped"]
    assert view.jobs == {}
