"""Live fleet view: state machine, drift detection, stall reporting."""

from repro.obs import LiveFleetView


def _heartbeat(name, recoveries, verdicts=None, cycles=0):
    return {
        "type": "heartbeat",
        "job": name,
        "cycles": cycles,
        "recoveries": recoveries,
        "verdicts": verdicts or {},
    }


def test_lifecycle_state_transitions():
    view = LiveFleetView()
    view.expect("top#0", app="top")
    assert view.jobs["top#0"].state == "pending"
    notices = view.update({"type": "start", "job": "top#0", "app": "top"}, now=1.0)
    assert notices == ["[fleet] top#0: started"]
    assert view.jobs["top#0"].state == "running"
    view.update(_heartbeat("top#0", 2, cycles=500), now=2.0)
    assert view.jobs["top#0"].cycles == 500
    notices = view.update(
        {"type": "done", "job": "top#0", "ok": True, "cycles": 900}, now=3.0
    )
    assert notices == ["[fleet] top#0: done"]
    status = view.jobs["top#0"]
    assert status.state == "done" and status.cycles == 900


def test_failed_job_keeps_first_error_line():
    view = LiveFleetView()
    view.update(
        {"type": "done", "job": "gzip#0", "ok": False,
         "error": "boom\ntraceback..."},
        now=1.0,
    )
    status = view.jobs["gzip#0"]
    assert status.state == "failed"
    assert view.notices[-1] == "[fleet] gzip#0: FAILED boom"


def test_drift_flagged_once_and_only_past_threshold():
    view = LiveFleetView(baselines={"gzip#0": 5}, drift_factor=2.0, drift_margin=3)
    view.expect("gzip#0", app="gzip")
    # threshold = 2*5+3 = 13; at the threshold is still fine
    assert view.update(_heartbeat("gzip#0", 13), now=1.0) == []
    notices = view.update(_heartbeat("gzip#0", 14), now=2.0)
    assert len(notices) == 1
    assert "PROFILE DRIFT" in notices[0]
    assert "re-profile gzip" in notices[0]
    assert view.drifting() == ["gzip#0"]
    # flagged exactly once, even as the count keeps growing
    assert view.update(_heartbeat("gzip#0", 50), now=3.0) == []


def test_captured_attacks_do_not_count_toward_drift():
    view = LiveFleetView(baselines={"bash#0": 0}, drift_factor=2.0, drift_margin=3)
    msg = _heartbeat(
        "bash#0", 20, verdicts={"captured-attack": 18, "anomalous": 2}
    )
    assert view.update(msg, now=1.0) == []
    assert view.jobs["bash#0"].non_attack_recoveries == 2
    assert view.drifting() == []


def test_no_baseline_means_no_drift_check():
    view = LiveFleetView(baselines={})
    assert view.update(_heartbeat("top#0", 10_000), now=1.0) == []
    assert view.drifting() == []


def test_journal_segments_accumulate():
    view = LiveFleetView()
    view.update(
        {"type": "journal", "job": "top#0",
         "records": [{"seq": 1}, {"seq": 3}], "dropped": 1},
        now=1.0,
    )
    view.update(
        {"type": "journal", "job": "top#0", "records": [{"seq": 4}],
         "dropped": 0},
        now=2.0,
    )
    status = view.jobs["top#0"]
    assert status.journal_records == 3
    assert status.journal_dropped == 1
    assert "dropped=1" in view.render(now=2.0)


def test_stall_detection_only_for_running_jobs():
    view = LiveFleetView(stall_after=5.0)
    view.update({"type": "start", "job": "slow#0"}, now=0.0)
    view.update({"type": "start", "job": "fast#0"}, now=0.0)
    view.update({"type": "done", "job": "fast#0", "ok": True}, now=1.0)
    assert view.stalled(now=6.0) == ["slow#0"]
    rendered = view.render(now=6.0)
    slow_line = next(ln for ln in rendered.splitlines() if "slow#0" in ln)
    assert "STALLED" in slow_line
    fast_line = next(ln for ln in rendered.splitlines() if "fast#0" in ln)
    assert "STALLED" not in fast_line


def test_render_lists_every_expected_job():
    view = LiveFleetView()
    view.expect("a#0", app="top")
    view.expect("b#0", app="gzip")
    rendered = view.render(now=0.0)
    assert "a#0" in rendered and "b#0" in rendered
    assert "pending" in rendered


# ---------------------------------------------------------------------------
# serve-daemon event folding (repro ctl watch)
# ---------------------------------------------------------------------------


def test_queued_event_registers_pending_job():
    view = LiveFleetView()
    notices = view.update(
        {"type": "queued", "id": "job-0001", "job": "top#0", "app": "top"},
        now=1.0,
    )
    assert notices == ["[fleet] top#0: queued"]
    assert view.jobs["top#0"].state == "pending"


def test_cancelled_event_is_terminal_with_note():
    view = LiveFleetView()
    view.update({"type": "queued", "job": "top#0", "app": "top"}, now=0.0)
    notices = view.update(
        {"type": "cancelled", "job": "top#0",
         "error": "cancelled while queued"},
        now=1.0,
    )
    assert notices == ["[fleet] top#0: CANCELLED"]
    status = view.jobs["top#0"]
    assert status.state == "cancelled"
    assert status.note == "cancelled while queued"


def test_rejected_event_creates_no_job_row():
    view = LiveFleetView()
    notices = view.update(
        {"type": "rejected", "app": "top", "tenant": "acme",
         "reason": "queue-full", "error": "queue is full (64 queued)"},
        now=1.0,
    )
    assert len(notices) == 1
    assert "rejected (queue-full)" in notices[0]
    assert view.jobs == {}


def test_rejected_tallies_surface_in_watch_footer():
    view = LiveFleetView()
    for _ in range(2):
        view.update(
            {"type": "rejected", "app": "top", "tenant": "acme",
             "reason": "queue-full", "error": "queue is full"},
            now=1.0,
        )
    view.update(
        {"type": "rejected", "app": "top", "tenant": "acme",
         "reason": "tenant-budget", "error": "budget exhausted"},
        now=2.0,
    )
    assert view.rejections == {"queue-full": 2, "tenant-budget": 1}
    rendered = view.render(now=3.0)
    assert "rejected: queue-full=2, tenant-budget=1" in rendered


def test_watch_dropped_events_accumulate_and_render():
    view = LiveFleetView()
    notices = view.update({"type": "watch-dropped", "dropped": 5}, now=1.0)
    assert notices == [
        "[serve] watch stream dropped 5 event(s) (consumer fell behind)"
    ]
    view.update({"type": "watch-dropped", "dropped": 2}, now=2.0)
    assert view.watch_dropped == 7
    assert "watch events dropped: 7" in view.render(now=3.0)


def test_alert_events_fire_and_resolve_in_view():
    view = LiveFleetView()
    notices = view.update(
        {"type": "alert", "rule": "queue-saturation", "label": "",
         "state": "firing", "value": 1.0, "threshold": 0.8,
         "description": "queue saturated"},
        now=1.0,
    )
    assert notices == [
        "[serve] ALERT firing: queue-saturation -- queue saturated"
    ]
    assert "alerts firing: queue-saturation" in view.render(now=2.0)
    notices = view.update(
        {"type": "alert", "rule": "queue-saturation", "label": "",
         "state": "resolved", "value": 0.0, "threshold": 0.8},
        now=3.0,
    )
    assert notices == ["[serve] alert resolved: queue-saturation"]
    assert "alerts firing" not in view.render(now=4.0)


def test_footer_absent_without_service_state():
    view = LiveFleetView()
    view.expect("a#0", app="top")
    rendered = view.render(now=0.0)
    assert "rejected:" not in rendered
    assert "alerts firing" not in rendered
    assert "watch events dropped" not in rendered


def test_serve_lifecycle_events_are_notices_only():
    view = LiveFleetView()
    started = view.update(
        {"type": "serve-started", "pid": 42, "variants": ["a", "b"]}, now=0.0
    )
    assert started == ["[serve] started (2 warm variant(s))"]
    scaled = view.update({"type": "scaled", "workers": 3, "pressure": 7}, now=1.0)
    assert scaled == ["[serve] scaled workers to 3 (pressure 7)"]
    stopped = view.update({"type": "serve-stopped", "drained": True}, now=2.0)
    assert stopped == ["[serve] stopped"]
    assert view.jobs == {}


# ---------------------------------------------------------------------------
# the ctl top frame (pure formatter over the metrics op response)
# ---------------------------------------------------------------------------


def test_render_service_top_full_frame():
    from repro.obs import render_service_top

    frame = render_service_top({
        "pid": 42,
        "uptime_seconds": 12.7,
        "samples": 13,
        "interval": 1.0,
        "queue": {"depth": 2.0, "running": 1.0, "utilization": 0.5},
        "workers": {"alive": 2.0, "desired": 2.0, "utilization": 0.5},
        "pool": {"hit_ratio": 0.75, "variants": {"default": {"warm": 2.0}}},
        "throughput": {"finished_total": 9.0, "finished_per_min": 4.5},
        "tenants": {
            "acme": {
                "in_flight": 1.0,
                "charged_cycles": 123456.0,
                "budget_remaining_ratio": 0.4,
                "rejected": 2.0,
                "queue_wait": {"count": 3, "p50": 0.1, "p95": 0.2,
                               "p99": 0.2, "mean": 0.1},
                "latency": {"count": 3, "p50": 1.0, "p95": 2.0, "p99": 2.5,
                            "mean": 1.2},
                "slo": {"target_seconds": 2.0, "met": 2, "missed": 1,
                        "compliance": 2 / 3},
            }
        },
        "alerts": {
            "active": [
                {"rule": "queue-saturation", "label": "", "since": 10.0,
                 "value": 1.0}
            ],
            "transitions": 1,
        },
    })
    assert "repro serve  pid 42  up 13s  samples 13 @ 1s" in frame
    assert "queue   depth 2  running 1  utilization 50%" in frame
    assert "default: 2 warm" in frame
    assert "rate 4.5/min" in frame
    acme = next(ln for ln in frame.splitlines() if ln.startswith("acme"))
    assert "123456" in acme and "67%" in acme and "40%" in acme
    assert "FIRING queue-saturation  value 1" in frame


def test_render_service_top_empty_daemon():
    from repro.obs import render_service_top

    frame = render_service_top({
        "pid": 1, "samples": 0, "interval": 1.0,
        "queue": {}, "workers": {}, "pool": {}, "throughput": {},
        "tenants": {}, "alerts": {"active": [], "transitions": 0},
    })
    assert "alerts: none firing" in frame
    assert "depth -" in frame  # no samples yet: dashes, not crashes
