"""Guest page table and EPT unit tests."""

import pytest

from repro.memory.ept import EptViolation, ExtendedPageTable
from repro.memory.layout import KERNEL_BASE, PAGE_SIZE
from repro.memory.paging import GuestPageTable, PageFault


class TestGuestPageTable:
    def test_map_translate(self):
        pt = GuestPageTable()
        pt.map_page(0x08048000, 0x00090000)
        assert pt.translate(0x08048123) == 0x00090123

    def test_unmapped_faults(self):
        pt = GuestPageTable()
        with pytest.raises(PageFault):
            pt.translate(0xDEADBEEF)

    def test_unmap(self):
        pt = GuestPageTable()
        pt.map_page(0x1000, 0x2000)
        pt.unmap_page(0x1000)
        with pytest.raises(PageFault):
            pt.translate(0x1000)

    def test_generation_bumps_on_map(self):
        pt = GuestPageTable()
        g0 = pt.generation
        pt.map_page(0x1000, 0x2000)
        assert pt.generation > g0

    def test_kernel_mappings_shared_by_reference(self):
        kernel = GuestPageTable()
        kernel.map_page(KERNEL_BASE + 0x100000, 0x100000)
        proc = GuestPageTable()
        kernel.share_kernel_mappings(proc)
        assert proc.translate(KERNEL_BASE + 0x100010) == 0x100010
        # later kernel-half maps through the original table propagate
        kernel.map_page(KERNEL_BASE + 0x101000, 0x101000)
        assert proc.translate(KERNEL_BASE + 0x101000) == 0x101000

    def test_user_mappings_not_shared(self):
        kernel = GuestPageTable()
        kernel.map_page(0x08048000, 0x00090000)
        proc = GuestPageTable()
        kernel.share_kernel_mappings(proc)
        with pytest.raises(PageFault):
            proc.translate(0x08048000)

    def test_translate_page_returns_none_when_missing(self):
        pt = GuestPageTable()
        assert pt.translate_page(0x1000) is None


class TestEpt:
    def test_identity_default(self):
        ept = ExtendedPageTable()
        assert ept.translate(0x1234) == 0x1234
        assert ept.translate_frame(7) == 7

    def test_override_and_revert(self):
        ept = ExtendedPageTable()
        ept.map_frame(10, 999)
        assert ept.translate_frame(10) == 999
        ept.unmap_frame(10)
        assert ept.translate_frame(10) == 10

    def test_identity_limit(self):
        ept = ExtendedPageTable(identity_limit_gpfn=100)
        with pytest.raises(EptViolation):
            ept.translate_frame(100)

    def test_batch_map_single_generation_bump(self):
        ept = ExtendedPageTable()
        g0 = ept.generation
        ept.map_frames([(1, 101), (2, 102), (3, 103)])
        assert ept.generation == g0 + 1
        assert ept.translate_frame(2) == 102

    def test_batch_unmap(self):
        ept = ExtendedPageTable()
        ept.map_frames([(1, 101), (2, 102)])
        ept.unmap_frames([1, 2])
        assert ept.translate_frame(1) == 1
        assert ept.overridden_gpfns() == []

    def test_overridden_gpfns_sorted(self):
        ept = ExtendedPageTable()
        ept.map_frames([(9, 1), (3, 2), (5000, 3)])
        assert ept.overridden_gpfns() == [3, 9, 5000]

    def test_translate_full_address(self):
        ept = ExtendedPageTable()
        ept.map_frame(4, 44)
        assert ept.translate(4 * PAGE_SIZE + 0x2A) == 44 * PAGE_SIZE + 0x2A
