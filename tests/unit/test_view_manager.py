"""Kernel view construction tests: UD2 fill, widening, EPT wiring."""

from repro.core.kernel_view import KernelViewConfig
from repro.core.rangelist import BASE_KERNEL, KernelProfile
from repro.core.view_manager import FunctionBoundaryFinder, ViewBuilder, gva_to_gpa
from repro.isa.opcodes import UD2_BYTES
from repro.memory.layout import PAGE_SIZE


def build_view(machine, ranges, app="test"):
    profile = KernelProfile()
    for segment, begin, end in ranges:
        profile.add(segment, begin, end)
    config = KernelViewConfig(app=app, profile=profile)
    return ViewBuilder(machine).build(0, config)


class TestBoundaryFinder:
    def test_finds_exact_function(self, machine):
        image = machine.image
        start, end = image.function_range("vfs_read")
        finder = FunctionBoundaryFinder(machine.physmem)
        mid = start + (end - start) // 2
        found = finder.containing_function(mid, image.text_start, image.text_end)
        assert found[0] == start
        # the forward bound is the next function's aligned prologue
        assert found[1] >= end
        assert (found[1] - found[1] % 16) == found[1]

    def test_widening_never_splits_marked_range(self, machine):
        image = machine.image
        start, end = image.function_range("schedule")
        finder = FunctionBoundaryFinder(machine.physmem)
        f0 = finder.containing_function(start + 1, image.text_start, image.text_end)
        f1 = finder.containing_function(end - 2, image.text_start, image.text_end)
        assert f0 == f1  # both blocks inside schedule widen identically

    def test_first_function_uses_region_start(self, machine):
        image = machine.image
        finder = FunctionBoundaryFinder(machine.physmem)
        found = finder.containing_function(
            image.text_start + 1, image.text_start, image.text_end
        )
        assert found[0] == image.text_start


class TestKernelView:
    def test_frames_cover_kernel_and_modules(self, machine):
        view = build_view(machine, [])
        text_pages = (
            (gva_to_gpa(machine.image.text_end) + PAGE_SIZE - 1) // PAGE_SIZE
            - gva_to_gpa(machine.image.text_start) // PAGE_SIZE
        )
        assert len(view.frames) >= text_pages
        assert len(view.regions) == 1 + len(machine.image.modules)

    def test_empty_view_is_all_ud2(self, machine):
        view = build_view(machine, [])
        addr = machine.image.address_of("vfs_read")
        hpfn = view.frames[gva_to_gpa(addr) >> 12]
        data = machine.physmem.read(hpfn << 12, PAGE_SIZE)
        assert data == UD2_BYTES * (PAGE_SIZE // 2)

    def test_profiled_function_is_loaded_whole(self, machine):
        image = machine.image
        start, end = image.function_range("vfs_read")
        # mark only a few bytes in the middle; the whole function loads
        view = build_view(machine, [(BASE_KERNEL, start + 8, start + 12)])
        hpfn = view.frames[gva_to_gpa(start) >> 12]
        offset = start & (PAGE_SIZE - 1)
        got = machine.physmem.read((hpfn << 12) | offset, min(end - start, PAGE_SIZE - offset))
        want = image.read_guest(start, len(got))
        assert got == want

    def test_unprofiled_neighbour_remains_ud2(self, machine):
        image = machine.image
        start, _ = image.function_range("vfs_read")
        wstart, _ = image.function_range("vfs_write")
        view = build_view(machine, [(BASE_KERNEL, start, start + 4)])
        hpfn = view.frames.get(gva_to_gpa(wstart) >> 12)
        if hpfn is not None:
            offset = wstart & (PAGE_SIZE - 1)
            got = machine.physmem.read((hpfn << 12) | offset, 2)
            # vfs_write may be the function immediately after vfs_read, in
            # which case widening stops exactly at its prologue
            assert got in (UD2_BYTES, image.read_guest(wstart, 2))

    def test_module_ranges_are_relative(self, machine):
        module = machine.image.modules["ext4"]
        fn_addr = machine.image.address_of("ext4_file_write")
        rel = fn_addr - module.base
        view = build_view(machine, [("ext4", rel, rel + 4)])
        hpfn = view.frames[gva_to_gpa(fn_addr) >> 12]
        offset = fn_addr & (PAGE_SIZE - 1)
        assert machine.physmem.read((hpfn << 12) | offset, 3) == b"\x55\x89\xe5"

    def test_install_uninstall_ept(self, machine):
        view = build_view(machine, [])
        addr = machine.image.address_of("schedule")
        gpfn = gva_to_gpa(addr) >> 12
        assert machine.ept.translate_frame(gpfn) == gpfn
        view.install(machine.ept)
        assert machine.ept.translate_frame(gpfn) == view.frames[gpfn]
        view.uninstall(machine.ept)
        assert machine.ept.translate_frame(gpfn) == gpfn

    def test_covers(self, machine):
        view = build_view(machine, [])
        assert view.covers(machine.image.address_of("schedule"))
        assert not view.covers(0xC9000000)

    def test_copy_original_counts_bytes(self, machine):
        view = build_view(machine, [])
        before = view.loaded_bytes
        start, end = machine.image.function_range("memcpy")
        view.copy_original(start, end)
        assert view.loaded_bytes == before + (end - start)

    def test_free_releases_private_frames_only(self, machine):
        image = machine.image
        start, end = image.function_range("vfs_read")
        # a partial-function load forces at least one private CoW frame
        view = build_view(machine, [(BASE_KERNEL, start + 8, start + 12)])
        private = [
            hpfn
            for gpfn, hpfn in view.frames.items()
            if hpfn != gpfn and not machine.physmem.shared.is_shared(hpfn)
        ]
        assert private, "partial load should have materialized a frame"
        count = machine.physmem.allocated_frame_count()
        view.free()
        # exactly the private frames are returned; the shared canonical
        # UD2 frame and adopted originals stay allocated
        assert machine.physmem.allocated_frame_count() == count - len(private)
        assert view.frames == {}

    def test_fresh_view_allocates_one_shared_frame(self, machine):
        count = machine.physmem.allocated_frame_count()
        view = build_view(machine, [])
        canonical = machine.physmem.shared.canonical_ud2_frame(UD2_BYTES)
        # CoW build: every unprofiled page maps to the canonical frame
        assert machine.physmem.allocated_frame_count() <= count + 1
        assert all(hpfn == canonical for hpfn in view.frames.values())
