"""Job queue: admission control, tenant budgets, priority, cancel."""

import threading

import pytest

from repro.fleet.spec import FleetJob
from repro.serve.queue import (
    REASON_QUEUE_FULL,
    REASON_SHUTTING_DOWN,
    REASON_TENANT_BUDGET,
    REASON_TENANT_IN_FLIGHT,
    AdmissionError,
    JobQueue,
    TenantPolicy,
)
from repro.telemetry import Telemetry


def _job(app="top", **kw):
    return FleetJob(app=app, scale=1, **kw)


# ---------------------------------------------------------------------------
# naming (seed-identity with the batch fleet)
# ---------------------------------------------------------------------------


def test_assign_name_matches_fleet_spec_convention():
    queue = JobQueue()
    jobs = [_job(), _job(), _job("gzip")]
    for job in jobs:
        queue.assign_name(job)
        queue.submit(job)
    assert [j.name for j in jobs] == ["top#0", "top#1", "gzip#0"]


def test_assign_name_respects_explicit_names():
    queue = JobQueue()
    named = _job(name="mine")
    queue.assign_name(named)
    assert named.name == "mine"
    auto = _job()
    queue.assign_name(auto)
    assert auto.name == "top#0"


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


def test_queue_full_rejection_counts_and_reports():
    telemetry = Telemetry()
    queue = JobQueue(max_depth=2, telemetry=telemetry)
    queue.submit(_job())
    queue.submit(_job())
    with pytest.raises(AdmissionError) as err:
        queue.submit(_job())
    assert err.value.reason == REASON_QUEUE_FULL
    rejected = telemetry.labelled.get("serve.rejected")
    assert rejected.values[REASON_QUEUE_FULL] == 1
    assert (
        queue.describe()["tenants"]["default"]["rejections"][REASON_QUEUE_FULL]
        == 1
    )


def test_queue_full_counts_only_queued_not_running():
    queue = JobQueue(max_depth=1)
    queue.submit(_job())
    assert queue.next_job(timeout=0.1) is not None  # now running
    queue.submit(_job())  # depth back to 1: admitted


def test_tenant_in_flight_cap():
    policy = TenantPolicy(max_in_flight=1)
    queue = JobQueue(policies={"acme": policy})
    queue.submit(_job(), tenant="acme")
    with pytest.raises(AdmissionError) as err:
        queue.submit(_job(), tenant="acme")
    assert err.value.reason == REASON_TENANT_IN_FLIGHT
    # other tenants are unaffected
    queue.submit(_job(), tenant="other")


def test_tenant_budget_rejects_after_exhaustion():
    policy = TenantPolicy(cycle_budget=1000)
    queue = JobQueue(default_policy=policy)
    first = queue.submit(_job())
    running = queue.next_job(timeout=0.1)
    assert running is first
    queue.finish(running, "done", charged_cycles=1500)
    assert queue.remaining_budget("default") == 0
    with pytest.raises(AdmissionError) as err:
        queue.submit(_job())
    assert err.value.reason == REASON_TENANT_BUDGET


def test_stop_accepting_rejects_new_submissions():
    queue = JobQueue()
    queue.stop_accepting()
    with pytest.raises(AdmissionError) as err:
        queue.submit(_job())
    assert err.value.reason == REASON_SHUTTING_DOWN


# ---------------------------------------------------------------------------
# scheduling
# ---------------------------------------------------------------------------


def test_priority_order_then_fifo():
    queue = JobQueue()
    low = queue.submit(_job(), priority=0)
    high = queue.submit(_job(), priority=5)
    low2 = queue.submit(_job(), priority=0)
    order = [queue.next_job(timeout=0.1) for _ in range(3)]
    assert order == [high, low, low2]


def test_next_job_skips_cancelled_entries():
    queue = JobQueue()
    first = queue.submit(_job())
    second = queue.submit(_job())
    assert queue.cancel(first.id) == "cancelled"
    assert queue.next_job(timeout=0.1) is second
    assert first.state == "cancelled"


# ---------------------------------------------------------------------------
# cancel semantics
# ---------------------------------------------------------------------------


def test_cancel_queued_is_immediate_running_is_a_request():
    queue = JobQueue()
    running = queue.submit(_job())
    still_queued = queue.submit(_job())
    assert queue.next_job(timeout=0.1) is running
    assert queue.cancel(running.id) == "cancel-requested"
    assert running.cancel_requested and not running.terminal
    assert queue.cancel(still_queued.id) == "cancelled"
    assert still_queued.terminal


def test_cancel_unknown_and_terminal():
    queue = JobQueue()
    with pytest.raises(KeyError):
        queue.cancel("job-9999")
    job = queue.submit(_job())
    queue.next_job(timeout=0.1)
    queue.finish(job, "done")
    with pytest.raises(ValueError):
        queue.cancel(job.id)


# ---------------------------------------------------------------------------
# drain / waiting
# ---------------------------------------------------------------------------


def test_wait_drained_blocks_until_all_terminal():
    queue = JobQueue()
    job = queue.submit(_job())
    running = queue.next_job(timeout=0.1)
    assert not queue.wait_drained(timeout=0.05)

    def finish():
        queue.finish(running, "done", charged_cycles=10)

    timer = threading.Timer(0.05, finish)
    timer.start()
    try:
        assert queue.wait_drained(timeout=2.0)
    finally:
        timer.cancel()
    assert job.terminal


def test_wait_terminal_returns_finished_job():
    queue = JobQueue()
    job = queue.submit(_job())
    assert queue.wait_terminal(job.id, timeout=0.05) is None
    queue.next_job(timeout=0.1)
    queue.finish(job, "failed", error="boom")
    found = queue.wait_terminal(job.id, timeout=0.5)
    assert found is job and found.state == "failed"


def test_pressure_counts_backlog_and_running():
    queue = JobQueue()
    assert queue.pressure() == 0
    queue.submit(_job())
    queue.submit(_job())
    assert queue.pressure() == 2
    queue.next_job(timeout=0.1)
    assert queue.pressure() == 2  # one running + one queued
