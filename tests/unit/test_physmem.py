"""Physical memory unit tests: frames, spans, versions, UD2 fill."""

import pytest

from repro.memory.layout import PAGE_SIZE
from repro.memory.physmem import PhysicalMemory


@pytest.fixture()
def mem():
    return PhysicalMemory()


def test_read_unwritten_is_zero(mem):
    assert mem.read(0x1234, 8) == b"\x00" * 8


def test_write_read_roundtrip(mem):
    mem.write(0x2000, b"hello world")
    assert mem.read(0x2000, 11) == b"hello world"


def test_write_spanning_pages(mem):
    addr = PAGE_SIZE - 3
    mem.write(addr, b"abcdef")
    assert mem.read(addr, 6) == b"abcdef"
    assert mem.read(PAGE_SIZE, 3) == b"def"


def test_versions_bump_on_write(mem):
    hpfn = 5
    v0 = mem.version(hpfn)
    mem.write(hpfn * PAGE_SIZE + 10, b"x")
    assert mem.version(hpfn) == v0 + 1


def test_cross_page_write_bumps_both(mem):
    mem.write(PAGE_SIZE - 1, b"ab")
    assert mem.version(0) == 1
    assert mem.version(1) == 1


def test_manual_version_bump(mem):
    mem.bump_version(9)
    assert mem.version(9) == 1


def test_allocate_frames_are_hypervisor_owned(mem):
    frames = mem.allocate_frames(4)
    assert len(frames) == 4
    assert all(f >= mem.guest_frames for f in frames)
    again = mem.allocate_frames(2)
    assert set(frames).isdisjoint(again)


def test_free_frames_releases_storage(mem):
    frames = mem.allocate_frames(2)
    for f in frames:
        mem.frame(f)
    count = mem.allocated_frame_count()
    mem.free_frames(frames)
    assert mem.allocated_frame_count() == count - 2


def test_fill_pattern_alignment(mem):
    """UD2 fill keeps 0f on even offsets when written at a page base."""
    mem.fill(0x4000, PAGE_SIZE, b"\x0f\x0b")
    data = mem.read(0x4000, 16)
    assert data == b"\x0f\x0b" * 8
    # an odd offset into the fill reads the split pattern
    assert mem.read(0x4001, 2) == b"\x0b\x0f"


def test_fill_odd_length(mem):
    mem.fill(0x5000, 5, b"\x0f\x0b")
    assert mem.read(0x5000, 5) == b"\x0f\x0b\x0f\x0b\x0f"


def test_fill_empty_pattern_rejected(mem):
    with pytest.raises(ValueError):
        mem.fill(0, 10, b"")


def test_negative_read_rejected(mem):
    with pytest.raises(ValueError):
        mem.read(0, -1)
