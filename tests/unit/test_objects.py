"""Kernel object model unit tests."""

import pytest

from repro.kernel.objects import (
    File,
    Pipe,
    Socket,
    Syscall,
    Task,
    TaskState,
    WaitQueue,
)
from repro.memory.paging import GuestPageTable


def make_task(pid=1, comm="t"):
    return Task(pid, comm, GuestPageTable(), kstack_top=0xC8002000)


def test_syscall_kwargs():
    req = Syscall("open", path="/etc/passwd", count=3)
    assert req.name == "open"
    assert req.args == {"path": "/etc/passwd", "count": 3}


def test_file_kind_validated():
    with pytest.raises(ValueError):
        File("floppy", "/dev/fd0")


def test_file_refcount_starts_at_one():
    assert File("ext4", "/etc/passwd").refcount == 1


def test_task_fd_allocation_monotonic():
    task = make_task()
    fd1 = task.alloc_fd(File("ext4", "a"))
    fd2 = task.alloc_fd(File("ext4", "b"))
    assert (fd1, fd2) == (3, 4)
    assert task.fd_table[fd1].name == "a"


def test_wait_queue_dedup():
    queue = WaitQueue("q")
    task = make_task()
    queue.add(task)
    queue.add(task)
    assert len(queue) == 1
    queue.remove(task)
    assert len(queue) == 0
    queue.remove(task)  # idempotent


def test_pipe_initial_state():
    pipe = Pipe(1)
    assert pipe.count == 0
    assert pipe.readers == 1 and pipe.writers == 1


def test_socket_queues():
    sock = Socket(1, "inet", "stream")
    assert sock.accept_queue == []
    assert not sock.listening
    assert sock.bound_port is None


def test_new_task_state():
    task = make_task()
    assert task.state is TaskState.RUNNABLE
    assert task.driver is None
    assert not task.finished
    assert task.irq_frames == []
