"""Kernel image layout and VMI unit tests (on a booted machine)."""

import pytest

from repro.kernel.catalog import BASE_FUNCTIONS, MODULES
from repro.kernel.image import SymbolError
from repro.memory.layout import KERNEL_TEXT_BASE, MODULE_SPACE_BASE
from repro.isa.opcodes import PROLOGUE_SIGNATURE


class TestImageLayout:
    def test_text_starts_at_base(self, machine):
        assert machine.image.text_start == KERNEL_TEXT_BASE
        assert machine.image.text_end > machine.image.text_start

    def test_all_functions_have_symbols(self, machine):
        for body in BASE_FUNCTIONS:
            symbol = machine.image.symbols[body.name]
            assert symbol.module is None
            assert symbol.size > 0

    def test_functions_are_16_aligned(self, machine):
        for body in BASE_FUNCTIONS:
            assert machine.image.address_of(body.name) % 16 == 0

    def test_every_function_starts_with_prologue(self, machine):
        """The view builder's signature search relies on this."""
        for body in BASE_FUNCTIONS:
            addr = machine.image.address_of(body.name)
            assert machine.image.read_guest(addr, 3) == PROLOGUE_SIGNATURE

    def test_symbols_do_not_overlap(self, machine):
        spans = sorted(
            (s.address, s.address + s.size) for s in machine.image.symbols.values()
        )
        for (a0, a1), (b0, _b1) in zip(spans, spans[1:]):
            assert a1 <= b0

    def test_alignment_gaps_are_nops(self, machine):
        spans = sorted(
            (s.address, s.address + s.size)
            for s in machine.image.symbols.values()
            if s.module is None
        )
        (_, end), (nxt, _) = spans[0], spans[1]
        if nxt > end:
            gap = machine.image.read_guest(end, nxt - end)
            assert set(gap) == {0x90}

    def test_unknown_symbol_raises(self, machine):
        with pytest.raises(SymbolError):
            machine.image.address_of("sys_nonexistent")

    def test_symbol_at_and_format(self, machine):
        addr = machine.image.address_of("vfs_read")
        assert machine.image.symbol_at(addr).name == "vfs_read"
        assert machine.image.symbol_at(addr + 5).name == "vfs_read"
        text = machine.image.format_address(addr + 5)
        assert "<vfs_read+0x5>" in text

    def test_format_unmapped_address_unknown(self, machine):
        assert "UNKNOWN" in machine.image.format_address(0xDEAD0000)

    def test_function_range(self, machine):
        start, end = machine.image.function_range("schedule")
        assert end - start == machine.image.symbols["schedule"].size

    def test_call_targets_resolve_at_build(self, machine):
        """build_base/load_module would have raised otherwise; spot-check
        one known relocation actually lands on the callee."""
        from repro.isa.decoder import decode

        addr = machine.image.address_of("snprintf")
        size = machine.image.symbols["snprintf"].size
        data = machine.image.read_guest(addr, size)
        pos = 0
        targets = []
        while pos < len(data):
            instr = decode(data, pos)
            if instr.op.value == "call":
                targets.append(addr + pos + 5 + instr.operand)
            pos += instr.length
        assert machine.image.address_of("vsnprintf") in targets


class TestModules:
    def test_boot_modules_loaded(self, machine):
        for name in MODULES:
            module = machine.image.modules[name]
            assert module.base >= MODULE_SPACE_BASE
            assert module.size > 0

    def test_module_symbols_tagged(self, machine):
        assert machine.image.symbols["ext4_file_write"].module == "ext4"
        assert machine.image.symbols["jbd2_journal_start"].module == "jbd2"

    def test_vmi_module_list_complete(self, machine):
        names = [m.name for m in machine.introspector.read_module_list()]
        assert names == list(MODULES)

    def test_vmi_module_bases_match_image(self, machine):
        for mod in machine.introspector.read_module_list():
            assert machine.image.modules[mod.name].base == mod.base
            assert machine.image.modules[mod.name].size == mod.size

    def test_hide_module_unlinks_from_vmi(self, machine):
        machine.image.hide_module("e1000")
        names = [m.name for m in machine.introspector.read_module_list()]
        assert "e1000" not in names
        assert set(names) == set(MODULES) - {"e1000"}

    def test_hidden_module_formats_as_unknown(self, machine):
        addr = machine.image.address_of("e1000_intr")
        assert "e1000_intr" in machine.image.format_address(addr)
        machine.image.hide_module("e1000")
        assert "UNKNOWN" in machine.image.format_address(addr)

    def test_duplicate_module_rejected(self, machine):
        from repro.kernel.catalog import e1000

        with pytest.raises(SymbolError):
            machine.image.load_module("e1000", e1000.FUNCTIONS)


class TestVmiProcessInfo:
    def test_boot_publishes_idle(self, machine):
        info = machine.introspector.read_current_process()
        assert info.pid == 0
        assert info.comm == "swapper"

    def test_spawn_updates_on_schedule(self, machine):
        from repro.kernel.objects import Syscall

        def app():
            yield Syscall("getpid")

        task = machine.spawn("myapp", app)
        machine.run(until=lambda: task.finished, max_cycles=100_000_000)
        # after the app exits the record points at whoever ran last
        info = machine.introspector.read_current_process()
        assert info.comm in ("myapp", "swapper")
