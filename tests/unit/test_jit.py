"""Unit tests for the block-translation layer (repro.hypervisor.jit)."""

import pytest

from repro.core.facechange import FaceChange
from repro.guest.machine import boot_machine
from repro.hypervisor.jit import env_jit_enabled
from repro.hypervisor.vcpu import SemanticsBridge, Vcpu
from repro.hypervisor.vmexit import VmExitReason
from repro.kernel.runtime import Platform
from repro.memory.ept import ExtendedPageTable
from repro.memory.layout import PAGE_SIZE
from repro.memory.mmu import Mmu
from repro.memory.paging import GuestPageTable
from repro.memory.physmem import PhysicalMemory

CODE_BASE = 0x00010000
STACK_TOP = 0x00020FF0


class NullBridge(SemanticsBridge):
    def interrupt_pending(self, vcpu):
        return False


def make_world(jit=True, threshold=1):
    physmem = PhysicalMemory()
    ept = ExtendedPageTable()
    pt = GuestPageTable()
    for gva in range(0x10000, 0x22000, PAGE_SIZE):
        pt.map_page(gva, gva)
    mmu = Mmu(physmem, ept)
    mmu.set_cr3(pt)
    vcpu = Vcpu(0, mmu, NullBridge())
    vcpu.esp = STACK_TOP
    vcpu.ebp = STACK_TOP
    vcpu.eip = CODE_BASE
    if jit:
        vcpu.set_jit(True)
        vcpu._jit.threshold = threshold
    return physmem, vcpu


def write_loop(physmem):
    """Two basic blocks jumping at each other: a fused superblock whose
    final transfer is a back-edge to the member entry."""
    a = b"\x90" * 4 + b"\xe9" + (0x17).to_bytes(4, "little")  # 0x0 -> 0x20
    b = b"\x90" * 4 + b"\xe9" + (-0x29 & 0xFFFFFFFF).to_bytes(4, "little")
    physmem.write(CODE_BASE, a)
    physmem.write(CODE_BASE + 0x20, b)


# -- env toggle ------------------------------------------------------------


@pytest.mark.parametrize(
    "raw,expected",
    [
        (None, True),
        ("1", True),
        ("on", True),
        ("yes", True),
        ("0", False),
        ("off", False),
        ("false", False),
        ("no", False),
        ("", False),
        ("  OFF  ", False),
    ],
)
def test_env_jit_enabled(monkeypatch, raw, expected):
    if raw is None:
        monkeypatch.delenv("REPRO_JIT", raising=False)
    else:
        monkeypatch.setenv("REPRO_JIT", raw)
    assert env_jit_enabled() is expected


def test_env_jit_enabled_custom_default(monkeypatch):
    monkeypatch.delenv("REPRO_JIT", raising=False)
    assert env_jit_enabled(default=False) is False


# -- promotion and counters ------------------------------------------------


def test_cold_page_is_interpreted_then_promoted():
    physmem, vcpu = make_world(threshold=3)
    write_loop(physmem)
    jit = vcpu._jit
    vcpu.run(budget=1)
    assert jit.promotions.value == 0  # heat 1 of 3
    vcpu.run(budget=1)
    assert jit.promotions.value == 0
    vcpu.run(budget=50)
    assert jit.promotions.value == 1
    assert jit.blocks.value >= 1
    assert len(jit.tables) == 1


def test_superblock_fuses_loop_and_counts():
    physmem, vcpu = make_world()
    write_loop(physmem)
    exit_ = vcpu.run(budget=200)
    jit = vcpu._jit
    assert exit_.reason is VmExitReason.BUDGET
    # budget overshoot is block-granular, exactly like the interpreter
    physmem2, ref = make_world(jit=False)
    write_loop(physmem2)
    ref.run(budget=200)
    assert vcpu.instructions == ref.instructions
    assert vcpu.cycles == ref.cycles
    assert jit.superblocks.value >= 1
    # the loop body became a member of the page's table
    group = next(iter(jit.tables.values()))
    assert 0 in group.active.members
    assert group.active.keys[0]  # constituent decode keys registered


def test_set_jit_off_drops_state_and_stays_identical():
    physmem, vcpu = make_world()
    write_loop(physmem)
    vcpu.run(budget=100)
    vcpu.set_jit(False)
    assert vcpu._jit is None and not vcpu.jit_enabled
    vcpu.run(budget=100)  # interpreted continuation
    assert vcpu.instructions == 200
    physmem2, ref = make_world(jit=False)
    write_loop(physmem2)
    ref.run(budget=200)
    assert (ref.eip, ref.cycles, ref.instructions) == (
        vcpu.eip,
        vcpu.cycles,
        vcpu.instructions,
    )


# -- invalidation sources --------------------------------------------------


def test_trap_arming_revalidates_with_alternates():
    physmem, vcpu = make_world()
    write_loop(physmem)
    vcpu.run(budget=100)
    jit = vcpu._jit
    group = next(iter(jit.tables.values()))
    first = group.active
    # arm a trap inside the page: signature changes, new table
    trap = CODE_BASE + 4
    vcpu.arm_trap(trap)
    exit_ = vcpu.run(budget=100)
    assert exit_.reason is VmExitReason.ADDRESS_TRAP
    assert exit_.rip == trap
    assert group.active is not first
    assert jit.invalidations.values.get("trap") == 1
    # disarm: the original table is an alternate, no re-translation
    vcpu.resume_past_trap()
    vcpu.disarm_trap(trap)
    vcpu.run(budget=100)
    assert group.active is first
    assert jit.invalidations.values.get("trap") == 1  # unchanged


def test_version_bump_orphans_the_old_table():
    physmem, vcpu = make_world()
    write_loop(physmem)
    vcpu.run(budget=100)
    jit = vcpu._jit
    (old_key,) = jit.tables.keys()
    physmem.bump_version(CODE_BASE >> 12)
    vcpu.run(budget=100)
    assert jit.promotions.value == 2  # re-promoted under the new version
    new_keys = set(jit.tables)
    assert old_key in new_keys  # orphaned until capacity sweep
    assert any(k != old_key for k in new_keys)


def test_flush_counts_invalidations():
    physmem, vcpu = make_world()
    write_loop(physmem)
    vcpu.run(budget=100)
    jit = vcpu._jit
    assert jit.tables
    vcpu.invalidate_translation_caches()
    assert not jit.tables and not jit.heat and not jit.code_pages
    assert jit.invalidations.values.get("flush", 0) >= 1


# -- cross-page fetch (first >= 8 fast path + spanning offsets) ------------


def test_fetch_cross_page_boundary_offsets():
    """decode via _fetch_cross_page at every offset near the page end:
    >= 8 bytes left takes the linear-read fast path, < 8 the two-page
    stitch; both must yield the same instruction."""
    for off in range(PAGE_SIZE - 16, PAGE_SIZE - 4):
        physmem, vcpu = make_world(jit=False)
        imm = 0xDEAD0000 | off
        instr_bytes = b"\x68" + imm.to_bytes(4, "little")  # push imm32
        physmem.write(CODE_BASE + off, instr_bytes)
        vcpu.eip = CODE_BASE + off
        instr = vcpu._fetch_cross_page()
        assert instr.length == 5
        assert instr.operand == imm, hex(off)


def test_spanning_instruction_executes_identically():
    results = []
    for jit in (False, True):
        physmem, vcpu = make_world(jit=jit)
        off = PAGE_SIZE - 2  # push imm32 spanning the page boundary
        imm = 0x11223344
        physmem.write(CODE_BASE + off, b"\x68" + imm.to_bytes(4, "little"))
        physmem.write(CODE_BASE + off + 5, b"\xf4")  # hlt on page 2
        # jump from the entry straight to the spanning instruction
        rel = off - 5
        physmem.write(CODE_BASE, b"\xe9" + (rel & 0xFFFFFFFF).to_bytes(4, "little"))
        for _ in range(6):  # heat + translated re-execution
            exit_ = vcpu.run(budget=100)
            assert exit_.reason is VmExitReason.HLT
            vcpu.eip = CODE_BASE
        results.append((vcpu.esp, vcpu.cycles, vcpu.instructions))
        assert vcpu.read_stack_u32(vcpu.esp) == imm
    assert results[0] == results[1]


# -- machine / facechange / fork wiring ------------------------------------


def test_machine_jit_default_and_override(monkeypatch):
    monkeypatch.delenv("REPRO_JIT", raising=False)
    machine = boot_machine(platform=Platform.KVM)
    assert machine.jit_enabled
    assert all(v.jit_enabled for v in machine.vcpus)
    off = boot_machine(platform=Platform.KVM, jit=False)
    assert not off.jit_enabled
    assert not any(v.jit_enabled for v in off.vcpus)
    off.set_jit(True)
    assert all(v.jit_enabled for v in off.vcpus)


def test_machine_jit_env_toggle(monkeypatch):
    monkeypatch.setenv("REPRO_JIT", "0")
    machine = boot_machine(platform=Platform.KVM)
    assert not machine.jit_enabled


def test_facechange_enable_picks_up_env(monkeypatch):
    monkeypatch.setenv("REPRO_JIT", "0")
    machine = boot_machine(platform=Platform.KVM, jit=True)
    fc = FaceChange(machine)
    fc.enable()
    assert not machine.jit_enabled
    assert not any(v.jit_enabled for v in machine.vcpus)


def test_fork_keeps_jit_enabled_with_flushed_tables(monkeypatch):
    monkeypatch.delenv("REPRO_JIT", raising=False)
    machine = boot_machine(platform=Platform.KVM)
    clone = machine.snapshot().fork()
    vcpu = clone.vcpu
    assert vcpu.jit_enabled
    assert not vcpu._jit.tables and not vcpu._jit.code_pages
