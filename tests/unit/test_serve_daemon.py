"""Serve daemon: workers, cancel/budget aborts, drain, control socket.

Everything here runs against a **fake executor** so the daemon's
control plane (queue, events, workers, socket) is exercised without
booting guests; the real execution path (and its bit-identity with the
batch fleet) is covered by ``tests/integration/test_serve_e2e.py`` and
``benchmarks/record_serve_throughput.py``.
"""

import threading
import time

import pytest

from repro.fleet import ProfileLibrary
from repro.fleet.jobs import JobResult
from repro.serve import (
    AdmissionError,
    JobAborted,
    ServeClient,
    ServeDaemon,
    SubmissionRejected,
    TenantPolicy,
    UnknownJob,
)
from repro.serve.queue import REASON_NO_PROFILE, REASON_TENANT_BUDGET
from repro.telemetry import Telemetry, snapshot


def _result(qjob, cycles=1000):
    registry = Telemetry()
    registry.counter("hv.exits").inc(7)
    return JobResult(
        name=qjob.job.name,
        app=qjob.job.app,
        ok=True,
        cycles=cycles,
        syscalls=5,
        job_cycles=cycles,
        telemetry=snapshot(registry),
    )


def _daemon(tmp_path, executor, workers=1, **kw):
    daemon = ServeDaemon(
        ProfileLibrary(str(tmp_path / "lib")),
        auto_profile=True,
        executor=executor,
        min_workers=1,
        max_workers=max(1, workers),
        **kw,
    )
    daemon._scale_to(workers)
    return daemon


def _events(daemon, kind):
    return [e for e in daemon._events if e["type"] == kind]


# ---------------------------------------------------------------------------
# happy path
# ---------------------------------------------------------------------------


def test_submit_runs_and_merges_lifetime_telemetry(tmp_path):
    daemon = _daemon(tmp_path, _result)
    try:
        first = daemon.submit({"app": "top", "scale": 1})
        second = daemon.submit({"app": "top", "scale": 1})
        for qjob in (first, second):
            done = daemon.queue.wait_terminal(qjob.id, timeout=5.0)
            assert done is not None and done.state == "done"
        # fleet-spec naming convention -> fleet-identical derived seeds
        assert [first.job.name, second.job.name] == ["top#0", "top#1"]
        assert first.result["id"] == first.id
        lifetime = daemon.stats()["jobs_telemetry"]
        assert lifetime["sources"] == 2
        assert lifetime["counters"]["hv.exits"] == 14
        assert [e["job"] for e in _events(daemon, "done")] == ["top#0", "top#1"]
    finally:
        daemon.shutdown(timeout=5.0)


def test_submit_validates_app_attack_guest(tmp_path):
    daemon = _daemon(tmp_path, _result, workers=0)
    try:
        with pytest.raises(ValueError, match="unknown application"):
            daemon.submit({"app": "nosuch"})
        with pytest.raises(ValueError, match="unknown malware"):
            daemon.submit({"app": "top", "attack": "nosuch"})
        with pytest.raises(ValueError, match="infects"):
            daemon.submit({"app": "gzip", "attack": "Injectso"})
        with pytest.raises(ValueError, match="guest"):
            daemon.submit({"app": "top", "guest": "nosuch-variant"})
    finally:
        daemon.shutdown(timeout=5.0)


# ---------------------------------------------------------------------------
# aborts: cancel-while-running, budget exhaustion mid-job
# ---------------------------------------------------------------------------


def _blocking_executor(release, started):
    def executor(qjob):
        started.set()
        while not release.is_set():
            if qjob.cancel_requested:
                raise JobAborted("cancelled", 123)
            time.sleep(0.005)
        return _result(qjob)

    return executor


def test_cancel_running_job_aborts_and_charges(tmp_path):
    release, started = threading.Event(), threading.Event()
    daemon = _daemon(tmp_path, _blocking_executor(release, started))
    try:
        qjob = daemon.submit({"app": "top", "scale": 1})
        assert started.wait(timeout=5.0)
        assert daemon.queue.cancel(qjob.id) == "cancel-requested"
        done = daemon.queue.wait_terminal(qjob.id, timeout=5.0)
        assert done.state == "cancelled"
        assert "cancelled while running" in done.error
        tenants = daemon.queue.describe()["tenants"]
        assert tenants["default"]["charged_cycles"] == 123
        assert _events(daemon, "cancelled")
    finally:
        release.set()
        daemon.shutdown(timeout=5.0)


def test_budget_exhaustion_mid_job_fails_and_blocks_tenant(tmp_path):
    consumed = 750

    def executor(qjob):
        raise JobAborted("tenant-budget", consumed)

    daemon = _daemon(
        tmp_path, executor,
        default_policy=TenantPolicy(cycle_budget=1000),
    )
    try:
        qjob = daemon.submit({"app": "top", "scale": 1})
        done = daemon.queue.wait_terminal(qjob.id, timeout=5.0)
        assert done.state == "failed"
        assert "budget exhausted mid-job" in done.error
        # the partial run is still charged...
        assert daemon.queue.remaining_budget("default") == 1000 - consumed
        # ...and a second over-budget abort pins the tenant at zero
        second = daemon.submit({"app": "top", "scale": 1})
        daemon.queue.wait_terminal(second.id, timeout=5.0)
        with pytest.raises(AdmissionError) as err:
            daemon.submit({"app": "top", "scale": 1})
        assert err.value.reason == REASON_TENANT_BUDGET
    finally:
        daemon.shutdown(timeout=5.0)


# ---------------------------------------------------------------------------
# admission / rejection events
# ---------------------------------------------------------------------------


def test_no_profile_rejection_without_auto_profile(tmp_path):
    daemon = ServeDaemon(
        ProfileLibrary(str(tmp_path / "lib")), auto_profile=False
    )
    try:
        with pytest.raises(AdmissionError) as err:
            daemon.submit({"app": "top", "scale": 1})
        assert err.value.reason == REASON_NO_PROFILE
        rejected = _events(daemon, "rejected")
        assert rejected and rejected[0]["reason"] == REASON_NO_PROFILE
    finally:
        daemon.shutdown(timeout=5.0)


# ---------------------------------------------------------------------------
# shutdown semantics
# ---------------------------------------------------------------------------


def test_graceful_shutdown_drains_every_queued_job(tmp_path):
    def executor(qjob):
        time.sleep(0.01)
        return _result(qjob)

    daemon = _daemon(tmp_path, executor)
    jobs = [daemon.submit({"app": "top", "scale": 1}) for _ in range(4)]
    summary = daemon.shutdown(drain=True, timeout=10.0)
    assert summary["drained"]
    assert summary["jobs"] == {"done": 4}
    for qjob in jobs:
        assert qjob.state == "done" and qjob.result is not None
    with pytest.raises(AdmissionError, match="shutting down"):
        daemon.submit({"app": "top", "scale": 1})


def test_no_drain_shutdown_cancels_queued_keeps_running(tmp_path):
    release, started = threading.Event(), threading.Event()
    daemon = _daemon(tmp_path, _blocking_executor(release, started))
    running = daemon.submit({"app": "top", "scale": 1})
    queued = daemon.submit({"app": "top", "scale": 1})
    assert started.wait(timeout=5.0)
    shutdown = threading.Thread(
        target=daemon.shutdown, kwargs={"drain": False, "timeout": 10.0}
    )
    shutdown.start()
    release.set()
    shutdown.join(timeout=10.0)
    assert not shutdown.is_alive()
    assert running.state == "done"
    assert queued.state == "cancelled"


# ---------------------------------------------------------------------------
# control socket end-to-end (fake executor, real unix socket + client)
# ---------------------------------------------------------------------------


def test_control_socket_end_to_end(tmp_path):
    release, started = threading.Event(), threading.Event()
    sock = str(tmp_path / "serve.sock")
    daemon = ServeDaemon(
        ProfileLibrary(str(tmp_path / "lib")),
        socket_path=sock,
        auto_profile=True,
        executor=_blocking_executor(release, started),
        min_workers=1,
        max_workers=2,
        warm_target=0,
        scale_interval=0.01,
    )
    daemon.start()
    client = ServeClient(sock)
    try:
        info = client.ping()
        assert info["accepting"] and info["version"] == 1

        first = client.submit("top", scale=1)
        assert first["name"] == "top#0"
        assert started.wait(timeout=5.0)
        backlog = [client.submit("top", scale=1) for _ in range(3)]

        # queue pressure grows the worker pool to its bound
        deadline = time.monotonic() + 5.0
        while daemon.worker_count() < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert daemon.worker_count() == 2

        jobs = client.status()["jobs"]
        assert len(jobs) == 4
        assert {j["id"] for j in jobs} == {
            first["id"], *(b["id"] for b in backlog)
        }

        with pytest.raises(UnknownJob):
            client.status("job-9999")
        with pytest.raises(UnknownJob):
            client.result("job-9999")
        with pytest.raises(SubmissionRejected) as err:
            client.submit("nosuchapp")
        assert err.value.reason == "bad-request"

        cancelled = client.cancel(backlog[-1]["id"])
        assert cancelled["action"] == "cancelled"

        watched = []
        watcher = threading.Thread(
            target=lambda: watched.extend(client.watch()), daemon=True
        )
        watcher.start()
        release.set()
        done = client.result(first["id"], wait=True, timeout=10.0)
        assert done["job"]["state"] == "done"
        assert done["result"]["cycles"] == 1000

        stats = client.stats()
        assert stats["queue"]["max_depth"] == 64
        assert stats["workers"]["max"] == 2

        summary = client.shutdown(drain=True, timeout=10.0)
        assert summary["drained"]
        assert summary["jobs"] == {"done": 3, "cancelled": 1}
        watcher.join(timeout=5.0)
        kinds = {e["type"] for e in watched}
        assert "done" in kinds and "serve-stopped" in kinds
    finally:
        release.set()
        daemon.shutdown(timeout=5.0)


def test_client_unreachable_raises(tmp_path):
    from repro.serve.client import DaemonUnreachable

    client = ServeClient(str(tmp_path / "nope.sock"))
    with pytest.raises(DaemonUnreachable):
        client.ping()


# ---------------------------------------------------------------------------
# service metrics: sampling, alerts, scrape surfaces
# ---------------------------------------------------------------------------


def test_event_sink_bounded_offer_and_drop_accounting():
    from repro.serve import EventSink

    sink = EventSink(maxsize=2)
    assert sink.offer({"seq": 1})
    assert sink.offer({"seq": 2})
    # full: offer never blocks, it drops and accounts
    assert not sink.offer({"seq": 3})
    assert not sink.offer({"seq": 4})
    assert sink.dropped_total == 2
    assert sink.take_dropped() == 2
    assert sink.take_dropped() == 0  # cleared once reported
    assert sink.get(timeout=0.1)["seq"] == 1


def test_metrics_sampling_fires_queue_saturation(tmp_path):
    release, started = threading.Event(), threading.Event()
    daemon = _daemon(
        tmp_path,
        _blocking_executor(release, started),
        max_queue_depth=2,
    )
    from repro.telemetry import Journal

    # start() normally opens the ops journal; open it by hand since
    # this test drives the daemon without its threads
    daemon._ops_journal = Journal(path=str(tmp_path / "ops.journal"))
    try:
        daemon.submit({"app": "top", "scale": 1})
        assert started.wait(timeout=5.0)
        daemon.submit({"app": "top", "scale": 1})
        daemon.submit({"app": "top", "scale": 1})
        # queue now 2/2: two manual ticks debounce into a fire
        assert daemon._sample_metrics() == []
        transitions = daemon._sample_metrics()
        assert [(t.rule, t.state) for t in transitions] == [
            ("queue-saturation", "firing")
        ]
        alert_events = _events(daemon, "alert")
        assert alert_events and alert_events[0]["rule"] == "queue-saturation"
        labelled = snapshot(daemon.telemetry)["labelled_counters"]
        assert labelled["serve.alerts"] == {"queue-saturation:firing": 1}

        described = daemon.metrics_describe()
        assert described["queue"]["utilization"] == 1.0
        assert described["alerts"]["active"][0]["rule"] == "queue-saturation"

        release.set()
        for job in daemon.queue.jobs():
            daemon.queue.wait_terminal(job.id, timeout=5.0)
        resolved = daemon._sample_metrics()
        assert ("queue-saturation", "resolved") in [
            (t.rule, t.state) for t in resolved
        ]
    finally:
        release.set()
        daemon.shutdown(timeout=5.0)
    # the ops journal recorded both transitions for repro forensics
    from repro.obs import render_forensics

    narrative = render_forensics(tmp_path / "ops.journal")
    assert "operational incidents (2 transitions)" in narrative
    assert "FIRING" in narrative and "RESOLVED" in narrative
    assert "queue-saturation" in narrative


def test_metrics_text_exposes_registry_and_series(tmp_path):
    daemon = _daemon(tmp_path, _result)
    try:
        qjob = daemon.submit({"app": "top", "scale": 1})
        daemon.queue.wait_terminal(qjob.id, timeout=5.0)
        daemon._sample_metrics()
        text = daemon.metrics_text()
        # registry counters (serve.* and merged job telemetry)...
        assert "# TYPE repro_serve_completed_total counter" in text
        assert "repro_jobs_hv_exits_total 7" in text
        # ...ring-series gauges and alert states
        assert "repro_serve_queue_depth 0" in text
        assert 'repro_serve_alert_state{rule="worker-stall"} 0' in text
    finally:
        daemon.shutdown(timeout=5.0)


def test_metrics_disabled_raises(tmp_path):
    daemon = _daemon(tmp_path, _result, metrics_interval=None)
    try:
        assert daemon.metrics is None
        from repro.serve import ServeError

        with pytest.raises(ServeError, match="metrics"):
            daemon.metrics_describe()
    finally:
        daemon.shutdown(timeout=5.0)


def test_metrics_op_over_socket(tmp_path):
    from repro.serve.client import ServeClientError

    sock = str(tmp_path / "serve.sock")
    daemon = ServeDaemon(
        ProfileLibrary(str(tmp_path / "lib")),
        socket_path=sock,
        auto_profile=True,
        executor=_result,
        warm_target=0,
        metrics_interval=0.05,
    )
    daemon.start()
    client = ServeClient(sock)
    try:
        job = client.submit("top", scale=1)
        client.result(job["id"], wait=True, timeout=10.0)
        deadline = time.monotonic() + 5.0
        while daemon.metrics.samples < 2 and time.monotonic() < deadline:
            time.sleep(0.02)

        described = client.metrics()
        assert described["samples"] >= 2
        assert described["throughput"]["finished_total"] >= 1.0
        assert "default" in described["tenants"]

        text = client.metrics(format="prom")
        assert "repro_serve_queue_depth" in text
        assert "repro_serve_alert_state" in text

        series = client.metrics(format="series")
        assert "serve.queue.depth" in series["series"]
    finally:
        client.shutdown(drain=True, timeout=10.0)
        daemon.shutdown(timeout=5.0)

    # a daemon without a recorder reports no-metrics over the socket
    daemon = ServeDaemon(
        ProfileLibrary(str(tmp_path / "lib")),
        socket_path=sock,
        auto_profile=True,
        executor=_result,
        warm_target=0,
        metrics_interval=None,
    )
    daemon.start()
    try:
        with pytest.raises(ServeClientError, match="no-metrics|metrics"):
            ServeClient(sock).metrics()
    finally:
        daemon.shutdown(timeout=5.0)


def test_metrics_http_listener_serves_scrapes(tmp_path):
    import json as json_mod
    import urllib.error
    import urllib.request

    daemon = ServeDaemon(
        ProfileLibrary(str(tmp_path / "lib")),
        auto_profile=True,
        executor=_result,
        warm_target=0,
        metrics_interval=0.05,
        metrics_addr="127.0.0.1:0",
    )
    daemon.start()
    try:
        assert daemon.metrics_port not in (None, 0)
        base = f"http://127.0.0.1:{daemon.metrics_port}"
        deadline = time.monotonic() + 5.0
        while daemon.metrics.samples < 1 and time.monotonic() < deadline:
            time.sleep(0.02)
        with urllib.request.urlopen(f"{base}/metrics", timeout=5) as fh:
            body = fh.read().decode("utf-8")
            assert fh.headers["Content-Type"].startswith("text/plain")
        assert "repro_serve_queue_depth" in body
        with urllib.request.urlopen(f"{base}/metrics.json", timeout=5) as fh:
            described = json_mod.loads(fh.read().decode("utf-8"))
        assert described["samples"] >= 1
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{base}/nope", timeout=5)
        assert err.value.code == 404
    finally:
        daemon.shutdown(timeout=5.0)


def test_bad_metrics_addr_rejected(tmp_path):
    from repro.serve import ServeError

    daemon = ServeDaemon(
        ProfileLibrary(str(tmp_path / "lib")),
        auto_profile=True,
        executor=_result,
        warm_target=0,
        metrics_addr="9464",  # no host part
    )
    try:
        with pytest.raises(ServeError, match="host:port"):
            daemon.start()
    finally:
        daemon.shutdown(timeout=5.0)


# ---------------------------------------------------------------------------
# watch-stream backpressure: a slow consumer must never block the daemon
# ---------------------------------------------------------------------------


def test_slow_subscriber_drops_instead_of_blocking(tmp_path):
    daemon = _daemon(tmp_path, _result, watch_buffer=4)
    try:
        sink, _ = daemon.subscribe()
        # nobody drains the sink; a burst far past its bound must
        # return promptly (bounded, non-blocking offers)
        t0 = time.monotonic()
        for i in range(500):
            daemon._emit({"type": "tick", "i": i})
        assert time.monotonic() - t0 < 2.0
        assert sink.dropped_total == 496
        counters = snapshot(daemon.telemetry)["counters"]
        assert counters["serve.watch.dropped"] == 496
        # a second, fresh subscriber is unaffected by the slow one
        fast, _ = daemon.subscribe()
        daemon._emit({"type": "tick", "i": 500})
        assert fast.get(timeout=1.0)["type"] == "tick"
        daemon.unsubscribe(sink)
        daemon.unsubscribe(fast)
    finally:
        daemon.shutdown(timeout=5.0)


def test_watch_socket_reports_dropped_events(tmp_path):
    sock = str(tmp_path / "serve.sock")
    daemon = ServeDaemon(
        ProfileLibrary(str(tmp_path / "lib")),
        socket_path=sock,
        auto_profile=True,
        executor=_result,
        warm_target=0,
        watch_buffer=2,
    )
    daemon.start()
    client = ServeClient(sock)
    events = []
    done = threading.Event()

    def consume():
        for event in client.watch():
            events.append(event)
            if event.get("type") == "serve-stopped":
                break
        done.set()

    watcher = threading.Thread(target=consume, daemon=True)
    watcher.start()
    try:
        deadline = time.monotonic() + 5.0
        while not daemon._subscribers and time.monotonic() < deadline:
            time.sleep(0.01)
        assert daemon._subscribers
        # overwhelm the 2-slot sink faster than the handler can drain
        for i in range(2000):
            daemon._emit({"type": "tick", "i": i})
        # the daemon stays fully responsive while the watcher lags
        assert ServeClient(sock).ping()["accepting"]
    finally:
        daemon.shutdown(drain=True, timeout=10.0)
    assert done.wait(timeout=10.0)
    drops = [e for e in events if e.get("type") == "watch-dropped"]
    ticks = [e for e in events if e.get("type") == "tick"]
    assert drops, "handler never surfaced a watch-dropped marker"
    # nothing vanishes silently: every emitted tick is either delivered
    # or inside a drop count (which may also cover lifecycle events
    # emitted during shutdown)
    assert len(ticks) + sum(e["dropped"] for e in drops) >= 2000
