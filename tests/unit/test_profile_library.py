"""Profile library: round-trips, checksums, corruption refusal."""

import json

import pytest

from repro.core.kernel_view import KernelViewConfig
from repro.core.rangelist import KernelProfile
from repro.fleet.library import (
    ProfileLibrary,
    ProfileLibraryError,
    ProfileRecord,
)


def _config(app="top", extra=0):
    profile = KernelProfile()
    profile.add("base", 0xC0001000, 0xC0001400 + extra)
    profile.add("base", 0xC0002FF0, 0xC0003010)  # page-straddling range
    profile.add("ext4", 0xC8000000, 0xC8000200)
    return KernelViewConfig(app=app, profile=profile, notes="test profile")


def test_put_get_round_trip(tmp_path):
    library = ProfileLibrary(tmp_path)
    stored = library.put(_config(), baseline=["b", "a"], meta={"scale": 2})
    loaded = library.get("top")
    assert loaded.digest == stored.digest
    assert loaded.config.app == "top"
    assert loaded.config.notes == "test profile"
    assert loaded.config.profile.to_dict() == _config().profile.to_dict()
    assert loaded.baseline == ["a", "b"]  # canonicalized sorted
    assert loaded.meta == {"scale": 2}


def test_put_is_idempotent_and_content_addressed(tmp_path):
    library = ProfileLibrary(tmp_path)
    first = library.put(_config())
    second = library.put(_config())
    assert first.digest == second.digest
    assert len(list((tmp_path / "objects").iterdir())) == 1


def test_new_content_supersedes_and_keeps_history(tmp_path):
    library = ProfileLibrary(tmp_path)
    old = library.put(_config())
    new = library.put(_config(extra=0x100))
    assert new.digest != old.digest
    assert library.digest_of("top") == new.digest
    index = json.loads((tmp_path / "index.json").read_text())
    assert old.digest in index["profiles"]["top"]["history"]
    # superseded object remains loadable by digest
    assert library.load_digest(old.digest).config.app == "top"


def test_tampered_object_fails_checksum(tmp_path):
    library = ProfileLibrary(tmp_path)
    record = library.put(_config())
    path = tmp_path / "objects" / f"{record.digest}.json"
    blob = json.loads(path.read_text())
    blob["notes"] = "tampered"
    path.write_text(json.dumps(blob, sort_keys=True, separators=(",", ":")))
    with pytest.raises(ProfileLibraryError, match="checksum"):
        library.get("top")


def test_inconsistent_frame_deltas_rejected():
    record = ProfileRecord(config=_config())
    payload = record.payload()
    payload["frame_deltas"]["base"][0][1] += 8  # shift a span start
    with pytest.raises(ProfileLibraryError, match="frame deltas"):
        ProfileRecord.from_payload(payload)


def test_unknown_app_is_an_error(tmp_path):
    library = ProfileLibrary(tmp_path)
    library.put(_config())
    with pytest.raises(ProfileLibraryError, match="no profile for 'gzip'"):
        library.get("gzip")


def test_future_format_version_rejected(tmp_path):
    record = ProfileRecord(config=_config())
    payload = record.payload()
    payload["format"] = 999
    with pytest.raises(ProfileLibraryError, match="format"):
        ProfileRecord.from_payload(payload)


def test_missing_object_reported(tmp_path):
    library = ProfileLibrary(tmp_path)
    record = library.put(_config())
    (tmp_path / "objects" / f"{record.digest}.json").unlink()
    with pytest.raises(ProfileLibraryError, match="missing profile object"):
        library.get("top")


def test_empty_library_lists_nothing(tmp_path):
    library = ProfileLibrary(tmp_path / "nonexistent")
    assert library.apps() == []
    assert not library.has("top")
