"""Telemetry merge: two registries merged == one observing both streams."""

import pytest

from repro.telemetry import Telemetry, merge_snapshots, snapshot


def _observe(telemetry, stream):
    """Replay a stream of (kind, name, value[, label]) observations."""
    for op in stream:
        if op[0] == "count":
            telemetry.counter(op[1]).inc(op[2])
        elif op[0] == "label":
            telemetry.labelled_counter(op[1]).inc(op[3], op[2])
        elif op[0] == "hist":
            telemetry.histogram(op[1]).observe(op[2])


STREAM_A = [
    ("count", "hv.exits", 7),
    ("count", "switch.switches", 3),
    ("label", "syscalls", 5, "read"),
    ("label", "syscalls", 2, "write"),
    ("hist", "latency", 0),
    ("hist", "latency", 3),
    ("hist", "latency", 900),
]
STREAM_B = [
    ("count", "hv.exits", 11),
    ("count", "recoveries", 1),
    ("label", "syscalls", 4, "read"),
    ("label", "syscalls", 9, "open"),
    ("hist", "latency", 5),
    ("hist", "latency", 70_000),
    ("hist", "other", 12),
]


def test_merge_equals_single_registry_observing_both_streams():
    left, right, both = Telemetry(), Telemetry(), Telemetry()
    _observe(left, STREAM_A)
    _observe(right, STREAM_B)
    _observe(both, STREAM_A)
    _observe(both, STREAM_B)

    merged = merge_snapshots([snapshot(left), snapshot(right)])
    reference = snapshot(both)

    assert merged["counters"] == reference["counters"]
    assert merged["labelled_counters"] == reference["labelled_counters"]
    for name, ref_hist in reference["histograms"].items():
        got = merged["histograms"][name]
        assert got["count"] == ref_hist["count"]
        assert got["total"] == ref_hist["total"]
        assert got["min"] == ref_hist["min"]
        assert got["max"] == ref_hist["max"]
        assert got["mean"] == pytest.approx(ref_hist["mean"])
        assert [list(b) for b in got["buckets"]] == [
            list(b) for b in ref_hist["buckets"]
        ]


def test_merge_is_order_insensitive():
    left, right = Telemetry(), Telemetry()
    _observe(left, STREAM_A)
    _observe(right, STREAM_B)
    ab = merge_snapshots([snapshot(left), snapshot(right)])
    ba = merge_snapshots([snapshot(right), snapshot(left)])
    assert ab["counters"] == ba["counters"]
    assert ab["labelled_counters"] == ba["labelled_counters"]
    assert {
        n: (h["count"], h["total"], h["min"], h["max"])
        for n, h in ab["histograms"].items()
    } == {
        n: (h["count"], h["total"], h["min"], h["max"])
        for n, h in ba["histograms"].items()
    }


def test_merge_single_snapshot_is_identity_on_instruments():
    telemetry = Telemetry()
    _observe(telemetry, STREAM_A)
    snap = snapshot(telemetry)
    merged = merge_snapshots([snap])
    assert merged["counters"] == snap["counters"]
    assert merged["labelled_counters"] == snap["labelled_counters"]
    assert merged["histograms"]["latency"]["count"] == 3


def test_trace_events_are_tagged_and_sampled():
    left, right = Telemetry(), Telemetry()
    for registry in (left, right):
        registry.enable_tracing()
    for i in range(10):
        left.emit(kind="exit", cycles=i * 10, cpu=0)
        right.emit(kind="exit", cycles=i * 10 + 5, cpu=0)
    merged = merge_snapshots(
        [snapshot(left), snapshot(right)],
        sources=["guest-a", "guest-b"],
        trace_limit=8,
    )
    events = merged["trace"]["events"]
    assert len(events) == 8
    assert {e["source"] for e in events} <= {"guest-a", "guest-b"}
    # thinning is accounted as drops: 20 emitted, 8 kept
    assert merged["trace"]["dropped"] == 12
    # interleaved by virtual time
    cycles = [e["cycles"] for e in events]
    assert cycles == sorted(cycles)


def test_source_name_count_mismatch_rejected():
    with pytest.raises(ValueError, match="source names"):
        merge_snapshots([{}, {}], sources=["only-one"])


def test_merge_of_empty_list_is_empty():
    merged = merge_snapshots([])
    assert merged["counters"] == {}
    assert merged["trace"]["events"] == []
    assert merged["sources"] == 0


# ---------------------------------------------------------------------------
# incremental merge (the serve daemon's lifetime accumulator)
# ---------------------------------------------------------------------------


def test_merge_into_equals_batch_merge():
    from repro.telemetry import empty_merge, merge_into

    left, right = Telemetry(), Telemetry()
    _observe(left, STREAM_A)
    _observe(right, STREAM_B)
    snaps = [snapshot(left), snapshot(right)]

    batch = merge_snapshots(snaps, sources=["job-a", "job-b"])
    incremental = empty_merge()
    merge_into(incremental, snaps[0], source="job-a")
    merge_into(incremental, snaps[1], source="job-b")

    assert incremental["counters"] == batch["counters"]
    assert incremental["labelled_counters"] == batch["labelled_counters"]
    assert incremental["journal"] == batch["journal"]
    assert incremental["sources"] == batch["sources"]
    for name, ref in batch["histograms"].items():
        got = incremental["histograms"][name]
        for key in ("count", "total", "min", "max"):
            assert got[key] == ref[key]


def test_merge_into_preserves_earlier_source_tags():
    from repro.telemetry import empty_merge, merge_into

    first, second = Telemetry(), Telemetry()
    for registry in (first, second):
        registry.enable_tracing()
    for i in range(4):
        first.emit(kind="exit", cycles=i * 10, cpu=0)
        second.emit(kind="exit", cycles=i * 10 + 5, cpu=0)
    acc = empty_merge()
    merge_into(acc, snapshot(first), source="job-a")
    merge_into(acc, snapshot(second), source="job-b")
    sources = {e["source"] for e in acc["trace"]["events"]}
    assert sources == {"job-a", "job-b"}
    cycles = [e["cycles"] for e in acc["trace"]["events"]]
    assert cycles == sorted(cycles)


def test_merge_into_rethinning_accounts_for_every_event():
    from repro.telemetry import empty_merge, merge_into

    acc = empty_merge()
    total = 0
    for job in range(5):
        registry = Telemetry()
        registry.enable_tracing()
        for i in range(30):
            registry.emit(kind="exit", cycles=job * 1000 + i, cpu=0)
        total += 30
        merge_into(acc, snapshot(registry), source=f"job-{job}", trace_limit=20)
    kept = len(acc["trace"]["events"])
    assert kept <= 20
    assert kept + acc["trace"]["dropped"] == total
