"""Telemetry merge: two registries merged == one observing both streams."""

import pytest

from repro.telemetry import Telemetry, merge_snapshots, snapshot


def _observe(telemetry, stream):
    """Replay a stream of (kind, name, value[, label]) observations."""
    for op in stream:
        if op[0] == "count":
            telemetry.counter(op[1]).inc(op[2])
        elif op[0] == "label":
            telemetry.labelled_counter(op[1]).inc(op[3], op[2])
        elif op[0] == "hist":
            telemetry.histogram(op[1]).observe(op[2])


STREAM_A = [
    ("count", "hv.exits", 7),
    ("count", "switch.switches", 3),
    ("label", "syscalls", 5, "read"),
    ("label", "syscalls", 2, "write"),
    ("hist", "latency", 0),
    ("hist", "latency", 3),
    ("hist", "latency", 900),
]
STREAM_B = [
    ("count", "hv.exits", 11),
    ("count", "recoveries", 1),
    ("label", "syscalls", 4, "read"),
    ("label", "syscalls", 9, "open"),
    ("hist", "latency", 5),
    ("hist", "latency", 70_000),
    ("hist", "other", 12),
]


def test_merge_equals_single_registry_observing_both_streams():
    left, right, both = Telemetry(), Telemetry(), Telemetry()
    _observe(left, STREAM_A)
    _observe(right, STREAM_B)
    _observe(both, STREAM_A)
    _observe(both, STREAM_B)

    merged = merge_snapshots([snapshot(left), snapshot(right)])
    reference = snapshot(both)

    assert merged["counters"] == reference["counters"]
    assert merged["labelled_counters"] == reference["labelled_counters"]
    for name, ref_hist in reference["histograms"].items():
        got = merged["histograms"][name]
        assert got["count"] == ref_hist["count"]
        assert got["total"] == ref_hist["total"]
        assert got["min"] == ref_hist["min"]
        assert got["max"] == ref_hist["max"]
        assert got["mean"] == pytest.approx(ref_hist["mean"])
        assert [list(b) for b in got["buckets"]] == [
            list(b) for b in ref_hist["buckets"]
        ]


def test_merge_is_order_insensitive():
    left, right = Telemetry(), Telemetry()
    _observe(left, STREAM_A)
    _observe(right, STREAM_B)
    ab = merge_snapshots([snapshot(left), snapshot(right)])
    ba = merge_snapshots([snapshot(right), snapshot(left)])
    assert ab["counters"] == ba["counters"]
    assert ab["labelled_counters"] == ba["labelled_counters"]
    assert {
        n: (h["count"], h["total"], h["min"], h["max"])
        for n, h in ab["histograms"].items()
    } == {
        n: (h["count"], h["total"], h["min"], h["max"])
        for n, h in ba["histograms"].items()
    }


def test_merge_single_snapshot_is_identity_on_instruments():
    telemetry = Telemetry()
    _observe(telemetry, STREAM_A)
    snap = snapshot(telemetry)
    merged = merge_snapshots([snap])
    assert merged["counters"] == snap["counters"]
    assert merged["labelled_counters"] == snap["labelled_counters"]
    assert merged["histograms"]["latency"]["count"] == 3


def test_trace_events_are_tagged_and_sampled():
    left, right = Telemetry(), Telemetry()
    for registry in (left, right):
        registry.enable_tracing()
    for i in range(10):
        left.emit(kind="exit", cycles=i * 10, cpu=0)
        right.emit(kind="exit", cycles=i * 10 + 5, cpu=0)
    merged = merge_snapshots(
        [snapshot(left), snapshot(right)],
        sources=["guest-a", "guest-b"],
        trace_limit=8,
    )
    events = merged["trace"]["events"]
    assert len(events) == 8
    assert {e["source"] for e in events} <= {"guest-a", "guest-b"}
    # thinning is accounted as drops: 20 emitted, 8 kept
    assert merged["trace"]["dropped"] == 12
    # interleaved by virtual time
    cycles = [e["cycles"] for e in events]
    assert cycles == sorted(cycles)


def test_source_name_count_mismatch_rejected():
    with pytest.raises(ValueError, match="source names"):
        merge_snapshots([{}, {}], sources=["only-one"])


def test_merge_of_empty_list_is_empty():
    merged = merge_snapshots([])
    assert merged["counters"] == {}
    assert merged["trace"]["events"] == []
    assert merged["sources"] == 0
