"""Assembler unit tests: lowering, sizes, relocations, determinism."""

import pytest

from repro.isa.assembler import (
    Act,
    Assembler,
    Call,
    Cond,
    CtxSwitch,
    Dispatch,
    FunctionBody,
    Halt,
    Iret,
    Jump,
    NameRegistry,
    Ret,
    While,
    Work,
)
from repro.isa.decoder import decode
from repro.isa.opcodes import Op, PROLOGUE_SIGNATURE


@pytest.fixture()
def asm():
    return Assembler(NameRegistry())


def walk(data: bytes):
    """Decode sequentially; return the list of decoded instructions."""
    out = []
    pos = 0
    while pos < len(data):
        instr = decode(data, pos)
        out.append(instr)
        pos += instr.length
    assert pos == len(data)
    return out


def test_frame_prologue_and_epilogue(asm):
    fn = asm.assemble(FunctionBody("f", [Work(8)]))
    assert bytes(fn.data[:3]) == PROLOGUE_SIGNATURE
    assert fn.data[-2] == 0xC9  # leave
    assert fn.data[-1] == 0xC3  # ret


def test_frameless_body(asm):
    fn = asm.assemble(FunctionBody("f", [Iret()], frame=False))
    assert bytes(fn.data) == b"\xcf"


def test_work_emits_exact_bytes(asm):
    for n in (0, 1, 2, 3, 7, 64, 255, 1000):
        fn = asm.assemble(FunctionBody("g", [Work(n)], frame=False))
        assert fn.size == n
        for instr in walk(bytes(fn.data)):
            assert instr.op is Op.FILL


def test_work_is_deterministic_per_name(asm):
    a = asm.assemble(FunctionBody("same", [Work(100)]))
    b = asm.assemble(FunctionBody("same", [Work(100)]))
    c = asm.assemble(FunctionBody("other", [Work(100)]))
    assert bytes(a.data) == bytes(b.data)
    assert bytes(a.data) != bytes(c.data)


def test_call_emits_relocation(asm):
    fn = asm.assemble(FunctionBody("f", [Call("target")], frame=False))
    assert fn.size == 5
    assert len(fn.relocations) == 1
    reloc = fn.relocations[0]
    assert reloc.target == "target"
    assert reloc.kind == "call"
    assert reloc.offset == 1
    assert reloc.insn_end == 5


def test_jump_emits_relocation(asm):
    fn = asm.assemble(FunctionBody("f", [Jump("t")], frame=False))
    assert fn.relocations[0].kind == "jmp"


def test_dispatch_act_use_interned_ids(asm):
    fn = asm.assemble(
        FunctionBody("f", [Dispatch("slot.a"), Act("act.b")], frame=False)
    )
    instrs = walk(bytes(fn.data))
    assert instrs[0].op is Op.DISPATCH
    assert instrs[0].operand == asm.names.slot_id("slot.a")
    assert instrs[1].op is Op.ACT
    assert instrs[1].operand == asm.names.act_id("act.b")


def test_cond_lowering_skips_body(asm):
    fn = asm.assemble(
        FunctionBody("f", [Cond("p", [Work(10)])], frame=False)
    )
    instrs = walk(bytes(fn.data))
    assert instrs[0].op is Op.PRED
    assert instrs[1].op is Op.JZ
    assert instrs[1].operand == 10  # jump over the 10-byte body


def test_while_loops_back(asm):
    fn = asm.assemble(FunctionBody("f", [While("p", [Work(4)])], frame=False))
    instrs = walk(bytes(fn.data))
    # PRED, JZ(exit), 4 bytes of fill..., JMP(top)
    assert instrs[0].op is Op.PRED
    assert instrs[1].op is Op.JZ
    jmp = instrs[-1]
    assert jmp.op is Op.JMP
    # JMP lands back exactly at the PRED
    jmp_offset = fn.size - 5
    assert jmp_offset + 5 + jmp.operand == 0


def test_special_statements(asm):
    fn = asm.assemble(
        FunctionBody("f", [CtxSwitch(), Halt(), Ret()], frame=False)
    )
    instrs = walk(bytes(fn.data))
    assert [i.op for i in instrs] == [Op.CTXSW, Op.HLT, Op.LEAVE, Op.RET]


def test_name_registry_is_stable():
    names = NameRegistry()
    a = names.pred_id("x")
    b = names.pred_id("y")
    assert names.pred_id("x") == a
    assert a != b
    assert names.pred_name(a) == "x"
    # separate namespaces
    assert names.act_id("x") == 0
    assert names.slot_id("x") == 0


def test_whole_function_walkable(asm):
    """A realistic body decodes cleanly from start to end."""
    body = FunctionBody(
        "realistic",
        [
            Work(40),
            Call("a"),
            Cond("p", [Call("b"), Work(12)]),
            While("q", [Act("w"), Call("c")]),
            Work(9),
            Dispatch("d"),
        ],
    )
    fn = asm.assemble(body)
    instrs = walk(bytes(fn.data))
    assert instrs[0].op is Op.PUSH_EBP
    assert instrs[-1].op is Op.RET
    assert sum(1 for i in instrs if i.op is Op.CALL) == 3
