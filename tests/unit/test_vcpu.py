"""Virtual CPU unit tests on hand-assembled micro-programs."""

import struct

import pytest

from repro.hypervisor.vcpu import SemanticsBridge, Vcpu
from repro.hypervisor.vmexit import VmExitReason
from repro.memory.ept import ExtendedPageTable
from repro.memory.layout import PAGE_SIZE
from repro.memory.mmu import Mmu
from repro.memory.paging import GuestPageTable
from repro.memory.physmem import PhysicalMemory

CODE_BASE = 0x00010000
STACK_TOP = 0x00020FF0


class ScriptBridge(SemanticsBridge):
    """Records semantic callbacks; predicates/slots come from tables."""

    def __init__(self):
        self.preds = {}
        self.slots = {}
        self.acts = []
        self.ctxsw_count = 0
        self.irets = 0

    def eval_pred(self, pred_id):
        return self.preds.get(pred_id, False)

    def do_act(self, act_id):
        self.acts.append(act_id)

    def resolve_slot(self, slot_id):
        return self.slots[slot_id]

    def on_ctxsw(self, vcpu):
        self.ctxsw_count += 1

    def on_iret(self, vcpu):
        self.irets += 1
        vcpu.eip = CODE_BASE + 0x800  # park on a hlt

    def interrupt_pending(self, vcpu):
        return False


@pytest.fixture()
def world():
    physmem = PhysicalMemory()
    ept = ExtendedPageTable()
    pt = GuestPageTable()
    for page in range(0x10000, 0x22000, PAGE_SIZE):
        pt.map_page(page, page)
    mmu = Mmu(physmem, ept)
    mmu.set_cr3(pt)
    bridge = ScriptBridge()
    vcpu = Vcpu(0, mmu, bridge)
    vcpu.esp = STACK_TOP
    vcpu.eip = CODE_BASE
    physmem.write(CODE_BASE + 0x800, b"\xf4")  # parking hlt
    return physmem, vcpu, bridge


def run_to_exit(vcpu, reason=VmExitReason.HLT):
    exit_ = vcpu.run(budget=10_000)
    assert exit_.reason is reason, exit_
    return exit_


def test_fill_and_hlt(world):
    physmem, vcpu, _ = world
    physmem.write(CODE_BASE, b"\x90" * 10 + b"\xf4")
    exit_ = run_to_exit(vcpu)
    assert exit_.rip == CODE_BASE + 11
    assert vcpu.instructions == 11


def test_call_and_ret(world):
    physmem, vcpu, _ = world
    # call +3 (to CODE_BASE+8); hlt; pad; target: ret -> back to hlt
    program = b"\xe8\x03\x00\x00\x00" + b"\xf4" + b"\x90\x90" + b"\xc3"
    physmem.write(CODE_BASE, program)
    exit_ = run_to_exit(vcpu)
    assert exit_.rip == CODE_BASE + 6
    assert vcpu.esp == STACK_TOP  # balanced


def test_frame_push_leave(world):
    physmem, vcpu, _ = world
    vcpu.ebp = 0x1111
    physmem.write(CODE_BASE, b"\x55\x89\xe5\xc9\xf4")
    run_to_exit(vcpu)
    assert vcpu.ebp == 0x1111
    assert vcpu.esp == STACK_TOP


def test_pred_and_jz_taken(world):
    physmem, vcpu, bridge = world
    bridge.preds[7] = False  # predicate false -> ZF set -> JZ jumps
    program = (
        b"\x3d\x07\x00\x00\x00"  # pred 7
        + b"\x0f\x84\x01\x00\x00\x00"  # jz +1 (over the int3-ish byte)
        + b"\x90"
        + b"\xf4"
    )
    physmem.write(CODE_BASE, program)
    exit_ = run_to_exit(vcpu)
    assert exit_.rip == CODE_BASE + len(program)


def test_pred_true_falls_through(world):
    physmem, vcpu, bridge = world
    bridge.preds[7] = True
    program = (
        b"\x3d\x07\x00\x00\x00"
        + b"\x0f\x84\x01\x00\x00\x00"
        + b"\xf4"  # reached only when predicate true
        + b"\x90\xf4"
    )
    physmem.write(CODE_BASE, program)
    exit_ = run_to_exit(vcpu)
    assert exit_.rip == CODE_BASE + 12


def test_act_reaches_bridge(world):
    physmem, vcpu, bridge = world
    physmem.write(CODE_BASE, b"\x0f\xae\x2a\x00\x00\x00\xf4")
    run_to_exit(vcpu)
    assert bridge.acts == [42]


def test_dispatch_calls_resolved_target(world):
    physmem, vcpu, bridge = world
    bridge.slots[3] = CODE_BASE + 0x100
    physmem.write(CODE_BASE, b"\xff\x14\x85\x03\x00\x00\x00\xf4")
    physmem.write(CODE_BASE + 0x100, b"\xc3")
    exit_ = run_to_exit(vcpu)
    assert exit_.rip == CODE_BASE + 8
    assert vcpu.esp == STACK_TOP


def test_ud2_exits_with_rip_at_fault(world):
    physmem, vcpu, _ = world
    physmem.write(CODE_BASE, b"\x90\x0f\x0b")
    exit_ = run_to_exit(vcpu, VmExitReason.INVALID_OPCODE)
    assert exit_.rip == CODE_BASE + 1


def test_invalid_byte_exits(world):
    physmem, vcpu, _ = world
    physmem.write(CODE_BASE, b"\x00")
    exit_ = run_to_exit(vcpu, VmExitReason.INVALID_OPCODE)
    assert exit_.rip == CODE_BASE


def test_split_ud2_executes_silently(world):
    """Odd entry into a UD2 fill misdecodes as OR -- the Figure 3 hazard."""
    physmem, vcpu, _ = world
    physmem.write(CODE_BASE, b"\x0b\x0f" * 3 + b"\xf4")
    run_to_exit(vcpu)
    assert vcpu.corruption_executed == 3


def test_address_trap_fires_and_resumes(world):
    physmem, vcpu, _ = world
    physmem.write(CODE_BASE, b"\x90\x90\xf4")
    trap_at = CODE_BASE + 1
    vcpu.arm_trap(trap_at)
    exit_ = vcpu.run(budget=100)
    assert exit_.reason is VmExitReason.ADDRESS_TRAP
    assert exit_.rip == trap_at
    vcpu.resume_past_trap()
    run_to_exit(vcpu)


def test_trap_disarm(world):
    physmem, vcpu, _ = world
    physmem.write(CODE_BASE, b"\x90\x90\xf4")
    vcpu.arm_trap(CODE_BASE + 1)
    vcpu.disarm_trap(CODE_BASE + 1)
    run_to_exit(vcpu)


def test_budget_exit(world):
    physmem, vcpu, _ = world
    # infinite loop: jmp -5
    physmem.write(CODE_BASE, b"\xe9\xfb\xff\xff\xff")
    exit_ = vcpu.run(budget=50)
    assert exit_.reason is VmExitReason.BUDGET


def test_block_cache_invalidated_by_code_write(world):
    """Recovery writes into code pages must take effect on next fetch."""
    physmem, vcpu, _ = world
    physmem.write(CODE_BASE, b"\x0f\x0b\xf4")
    exit_ = run_to_exit(vcpu, VmExitReason.INVALID_OPCODE)
    assert exit_.rip == CODE_BASE
    # "recover" the code: overwrite the UD2 with nops
    physmem.write(CODE_BASE, b"\x90\x90")
    run_to_exit(vcpu)
    assert vcpu.eip == CODE_BASE + 3


def test_translation_error_is_error_exit(world):
    physmem, vcpu, _ = world
    vcpu.eip = 0xDEAD0000
    exit_ = vcpu.run(budget=10)
    assert exit_.reason is VmExitReason.ERROR


def test_cross_page_instruction(world):
    """An instruction split across a page boundary still executes."""
    physmem, vcpu, _ = world
    # place a 5-byte call ending 2 bytes into the next page
    addr = CODE_BASE + PAGE_SIZE - 3
    target = CODE_BASE + PAGE_SIZE + 0x100
    rel = target - (addr + 5)
    physmem.write(addr, b"\xe8" + struct.pack("<i", rel))
    physmem.write(target, b"\xf4")
    vcpu.eip = addr
    exit_ = run_to_exit(vcpu)
    assert exit_.rip == target + 1


def test_stack_cache_tracks_cr3(world):
    physmem, vcpu, _ = world
    vcpu.push(0x1234)
    assert vcpu.pop() == 0x1234
    # push/pop across a page boundary edge
    vcpu.esp = 0x00021002
    vcpu.push(0xCAFEBABE)
    assert vcpu.pop() == 0xCAFEBABE


def test_iret_and_ctxsw_delegate(world):
    physmem, vcpu, bridge = world
    physmem.write(CODE_BASE, b"\xf5\xcf")
    run_to_exit(vcpu)
    assert bridge.ctxsw_count == 1
    assert bridge.irets == 1
