"""Request-scoped trace propagation through the serve daemon.

Every submission carries one trace id -- minted client-side by
``ServeClient.submit`` (or daemon-side at admission) -- stamped into
queue entries, lifecycle events, status rows and the submit response,
so ``repro obs trace`` can follow a request after the daemon is gone.
Also covers the ``--metrics-interval 0`` ergonomics: ``ctl metrics`` /
``ctl top`` against a recorder-less daemon must say so clearly.
"""

import time

import pytest

from repro.cli import main
from repro.fleet import ProfileLibrary
from repro.fleet.jobs import JobResult
from repro.serve import MetricsDisabled, ServeClient, ServeDaemon


def fake_executor(qjob):
    time.sleep(0.01)
    return JobResult(
        name=qjob.job.name, app=qjob.job.app, ok=True,
        cycles=1000, syscalls=5, job_cycles=1000,
    )


@pytest.fixture()
def daemon(tmp_path):
    d = ServeDaemon(
        ProfileLibrary(str(tmp_path / "lib")),
        socket_path=str(tmp_path / "serve.sock"),
        auto_profile=True,
        executor=fake_executor,
        warm_target=0,
    )
    d.start()
    yield d
    if not d.stopped.is_set():
        d.shutdown(timeout=10.0)


def test_daemon_mints_trace_at_admission_when_absent(daemon):
    queued = daemon.submit({"app": "top", "scale": 2})
    assert len(queued.trace_id) == 32
    int(queued.trace_id, 16)  # hex


def test_explicit_trace_id_sticks(daemon):
    queued = daemon.submit({"app": "top", "scale": 2}, trace_id="cafe01")
    assert queued.trace_id == "cafe01"
    assert daemon.queue.get(queued.id).describe()["trace"] == "cafe01"


def test_client_submit_echoes_trace_and_status_carries_it(daemon):
    client = ServeClient(daemon.socket_path)
    response = client.submit("top", trace_id="deadbeef")
    assert response["trace"] == "deadbeef"
    job = client.status(response["id"])["job"]
    assert job["trace"] == "deadbeef"


def test_client_mints_trace_when_not_supplied(daemon):
    client = ServeClient(daemon.socket_path)
    response = client.submit("top")
    assert len(response["trace"]) == 32


def test_lifecycle_events_are_stamped_with_trace(daemon):
    client = ServeClient(daemon.socket_path)
    response = client.submit("top", trace_id="abad1dea")
    client.result(response["id"], wait=True, timeout=30.0)
    _sink, backlog = daemon.subscribe(since=0)
    stamped = [e for e in backlog if e.get("trace") == "abad1dea"]
    kinds = {e["type"] for e in stamped}
    assert "queued" in kinds
    assert "start" in kinds
    assert "done" in kinds


def test_ctl_submit_prints_trace_id(daemon, capsys):
    sock = daemon.socket_path
    code = main([
        "ctl", "--socket", sock, "submit", "top",
        "--trace-id", "0ddba11",
    ])
    assert code == 0
    assert "trace 0ddba11" in capsys.readouterr().out


def test_ctl_metrics_disabled_is_a_clear_exit_2(tmp_path, capsys):
    d = ServeDaemon(
        ProfileLibrary(str(tmp_path / "lib")),
        socket_path=str(tmp_path / "serve.sock"),
        auto_profile=True,
        executor=fake_executor,
        warm_target=0,
        metrics_interval=None,
    )
    d.start()
    try:
        for verb in (["metrics"], ["top", "--once"]):
            code = main(["ctl", "--socket", d.socket_path, *verb])
            assert code == 2
            err = capsys.readouterr().err
            assert err.startswith("error: metrics recorder disabled")
            assert "--metrics-interval 0" in err
        with pytest.raises(MetricsDisabled):
            ServeClient(d.socket_path).metrics()
    finally:
        d.shutdown(timeout=10.0)
