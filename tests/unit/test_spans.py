"""Causal span recorder: parenting, per-CPU stacks, journaling."""

from repro.telemetry import Journal, SpanRecorder, build_span_trees


def test_auto_parenting_from_open_stack():
    rec = SpanRecorder()
    root = rec.open("vmexit", cycles=10)
    child = rec.open("recovery", cycles=20)
    grandchild = rec.open("backtrace", cycles=30)
    assert root.parent_id is None
    assert child.parent_id == root.span_id
    assert grandchild.parent_id == child.span_id
    rec.close(grandchild, cycles=35)
    # after closing, the stack top is the child again
    sibling = rec.open("backtrace", cycles=40)
    assert sibling.parent_id == child.span_id
    rec.close(sibling, cycles=45)
    rec.close(child, cycles=50)
    rec.close(root, cycles=60)
    assert rec.current(0) is None


def test_per_cpu_stacks_are_independent():
    rec = SpanRecorder()
    a = rec.open("vmexit", cpu=0, cycles=1)
    b = rec.open("vmexit", cpu=1, cycles=2)
    child1 = rec.open("recovery", cpu=1, cycles=3)
    assert b.parent_id is None, "cpu1 root must not parent under cpu0"
    assert child1.parent_id == b.span_id
    assert rec.current(0) is a
    assert rec.current(1) is child1


def test_explicit_parent_overrides_stack():
    rec = SpanRecorder()
    root = rec.open("vmexit", cycles=1)
    other = rec.open("detour", cycles=2)
    explicit = rec.open("recovery", cycles=3, parent=root.span_id)
    assert explicit.parent_id == root.span_id
    assert other.parent_id == root.span_id
    explicit2 = rec.open("recovery", cycles=4, parent=None)
    assert explicit2.parent_id is None


def test_close_journals_the_record():
    journal = Journal()
    rec = SpanRecorder()
    rec.bind(journal)
    span = rec.open("vmexit", cycles=5, reason="INVALID_OPCODE")
    rec.close(span, cycles=9, charged=4)
    records = journal.records()
    assert len(records) == 1
    (record,) = records
    assert record["t"] == "span"
    assert record["kind"] == "vmexit"
    assert record["start"] == 5 and record["end"] == 9
    assert record["attrs"] == {"reason": "INVALID_OPCODE", "charged": 4}
    assert record["parent"] is None


def test_event_attaches_zero_duration_child():
    journal = Journal()
    rec = SpanRecorder()
    rec.bind(journal)
    span = rec.open("recovery", cycles=5)
    rec.event(span, "provenance", cycles=7, verdict="benign")
    rec.close(span, cycles=9)
    trees = build_span_trees(journal.records())
    assert len(trees) == 1
    (root,) = trees
    assert root.kind == "recovery"
    assert [c.kind for c in root.children] == ["provenance"]
    child = root.children[0]
    assert child.record["start"] == child.record["end"] == 7
    assert child.attrs["verdict"] == "benign"
    # the zero-duration child never occupied the open stack
    assert rec.current(0) is None


def test_children_precede_parents_in_journal_order():
    journal = Journal()
    rec = SpanRecorder()
    rec.bind(journal)
    root = rec.open("vmexit", cycles=1)
    child = rec.open("recovery", cycles=2)
    rec.close(child, cycles=3)
    rec.close(root, cycles=4)
    kinds = [r["kind"] for r in journal.records()]
    assert kinds == ["recovery", "vmexit"]
    trees = build_span_trees(journal.records())
    assert [t.kind for t in trees] == ["vmexit"]
    assert [c.kind for c in trees[0].children] == ["recovery"]


def test_reset_clears_open_stacks():
    rec = SpanRecorder()
    rec.open("vmexit", cycles=1)
    rec.reset()
    assert rec.current(0) is None
    fresh = rec.open("vmexit", cycles=2)
    assert fresh.parent_id is None
