"""Digest discipline: profiles, snapshots, and samples stay per-variant.

The guest-variant refactor threads two digests through the stack --
``GuestConfig.digest()`` (machine identity) and ``build_digest()``
(kernel build, platform excluded).  These tests pin the refusal
behaviour: a profile pinned to one build is never served to another, a
snapshot never forks a job pinned to a different variant, legacy
unpinned records still load (with a warning), and sampled stacks from
different variants never fold together.
"""

import pytest

from repro.core.kernel_view import KernelViewConfig
from repro.core.rangelist import KernelProfile
from repro.fleet.library import ProfileLibrary, ProfileLibraryError
from repro.fleet.snapshot import SnapshotError
from repro.guest import boot_machine
from repro.guest.config import DEFAULT_GUEST_CONFIG, QEMU_TSC, VARIANTS
from repro.obs.profiling.sampler import (
    GUEST_PREFIX_LEN,
    SampleProfile,
    split_function_key,
    split_stack_label,
)

DEFAULT_BUILD = DEFAULT_GUEST_CONFIG.build_digest()
OTHER_BUILD = VARIANTS["no-net"].build_digest()


def _config(app="top"):
    profile = KernelProfile()
    profile.add("base", 0xC0001000, 0xC0001400)
    return KernelViewConfig(app=app, profile=profile, notes="test")


# ---------------------------------------------------------------------------
# profile library pinning
# ---------------------------------------------------------------------------


def test_pinned_record_served_for_its_build(tmp_path):
    library = ProfileLibrary(tmp_path)
    stored = library.put(_config(), guest_digest=DEFAULT_BUILD)
    loaded = library.get("top", guest_digest=DEFAULT_BUILD)
    assert loaded.digest == stored.digest
    assert loaded.guest_digest == DEFAULT_BUILD
    assert library.digest_of("top", DEFAULT_BUILD) == stored.digest
    assert library.variants_of("top") == {DEFAULT_BUILD: stored.digest}


def test_pinned_record_refused_for_other_build(tmp_path):
    library = ProfileLibrary(tmp_path)
    library.put(_config(), guest_digest=DEFAULT_BUILD)
    with pytest.raises(
        ProfileLibraryError, match="pinned to guest build"
    ) as excinfo:
        library.get("top", guest_digest=OTHER_BUILD)
    # the error names both builds so the fix (re-profile) is actionable
    assert DEFAULT_BUILD[:12] in str(excinfo.value)
    assert OTHER_BUILD[:12] in str(excinfo.value)


def test_one_app_pins_one_record_per_build(tmp_path):
    library = ProfileLibrary(tmp_path)
    library.put(_config(), guest_digest=DEFAULT_BUILD)
    other = library.put(_config("top"), meta={"variant": "no-net"},
                        guest_digest=OTHER_BUILD)
    assert library.get("top", guest_digest=OTHER_BUILD).digest == other.digest
    # the first build's pin survives the second put
    assert library.digest_of("top", DEFAULT_BUILD) is not None


def test_legacy_unpinned_record_warns_and_serves_any_variant(tmp_path):
    library = ProfileLibrary(tmp_path)
    library.put(_config())  # no guest_digest: the pre-refactor format
    with pytest.warns(UserWarning, match="unpinned"):
        record = library.get("top", guest_digest=OTHER_BUILD)
    assert record.guest_digest == ""


# ---------------------------------------------------------------------------
# snapshot fork pinning
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def default_snapshot():
    return boot_machine().snapshot()


def test_snapshot_carries_config_and_digests(default_snapshot):
    assert default_snapshot.config.digest() == DEFAULT_GUEST_CONFIG.digest()
    assert default_snapshot.guest_digest == DEFAULT_GUEST_CONFIG.digest()
    assert default_snapshot.build_digest == DEFAULT_BUILD


def test_fork_accepts_matching_digest(default_snapshot):
    clone = default_snapshot.fork(expect_digest=DEFAULT_GUEST_CONFIG.digest())
    assert clone.guest_digest == DEFAULT_GUEST_CONFIG.digest()


def test_fork_refuses_mismatched_digest(default_snapshot):
    wrong = VARIANTS["no-net"].digest()
    with pytest.raises(SnapshotError, match="guest variant mismatch"):
        default_snapshot.fork(expect_digest=wrong)
    # platform is part of machine identity: a qemu-tsc job must not run
    # on a kvm-pvclock snapshot even though the build is the same
    with pytest.raises(SnapshotError, match="guest variant mismatch"):
        default_snapshot.fork(
            expect_digest=DEFAULT_GUEST_CONFIG.with_platform(QEMU_TSC).digest()
        )


def test_machine_exposes_both_digests():
    machine = boot_machine(config="no-net")
    assert machine.guest_digest == VARIANTS["no-net"].digest()
    assert machine.build_digest == OTHER_BUILD


# ---------------------------------------------------------------------------
# execute_job build check
# ---------------------------------------------------------------------------


def test_execute_job_refuses_record_from_other_build(default_snapshot):
    from repro.fleet.jobs import execute_job
    from repro.fleet.library import ProfileRecord
    from repro.fleet.spec import FleetJob

    machine = default_snapshot.fork()
    record = ProfileRecord(config=_config(), guest_digest=OTHER_BUILD)
    with pytest.raises(ProfileLibraryError, match="do not transfer"):
        execute_job(machine, FleetJob(app="top", name="top#0"), record)


# ---------------------------------------------------------------------------
# sampler label separation
# ---------------------------------------------------------------------------


def test_sample_labels_carry_guest_and_parse_back():
    profile = SampleProfile()
    g1, g2 = "a" * GUEST_PREFIX_LEN, "b" * GUEST_PREFIX_LEN
    profile.add_sample("top", 0, 0, ["sys_open", "do_sys_open"], guest=g1)
    profile.add_sample("top", 0, 0, ["sys_open", "do_sys_open"], guest=g2)
    assert profile.guests() == [g1, g2]
    # same comm/view/stack, different guest: two rows, never folded
    assert len(profile.stacks) == 2
    assert profile.folded(guest=g1) == {"sys_open;do_sys_open": 1}
    assert profile.folded() == {"sys_open;do_sys_open": 2}


def test_merge_keeps_variants_separate():
    left, right = SampleProfile(), SampleProfile()
    g1, g2 = "a" * GUEST_PREFIX_LEN, "b" * GUEST_PREFIX_LEN
    left.add_sample("top", 0, 0, ["f"], guest=g1)
    right.add_sample("top", 0, 0, ["f"], guest=g2)
    merged = SampleProfile.merged([left, right])
    assert merged.samples == 2
    assert merged.folded(guest=g1) == {"f": 1}
    assert merged.folded(guest=g2) == {"f": 1}


def test_legacy_labels_parse_with_empty_guest():
    guest, comm, view, cpu, folded = split_stack_label("top\t0\t1\ta;b")
    assert (guest, comm, view, cpu, folded) == ("", "top", "0", "1", "a;b")
    key = "top\tbase\t16\t32\tsys_open"
    assert split_function_key(key) == ("", "top", "base", "16", "32", "sys_open")


def test_heat_analysis_refuses_mixed_guest_snapshots():
    from repro.obs.profiling.heat import analyze_heat

    profile = SampleProfile()
    g1, g2 = "a" * GUEST_PREFIX_LEN, "b" * GUEST_PREFIX_LEN
    key1 = f"{g1}\ttop\tbase\t16\t32\tsys_open"
    profile.add_sample("top", 0, 0, ["sys_open"], function_key=key1, guest=g1)
    profile.add_sample("top", 0, 0, ["sys_open"], guest=g2)
    with pytest.raises(ValueError, match="several guest variants"):
        analyze_heat({}, {}, profile=profile)
    report = analyze_heat({}, {}, profile=profile, guest=g1)
    assert report.apps == {}


def test_sampling_profiler_labels_with_machine_digest():
    from repro.obs.profiling.sampler import SamplingProfiler

    machine = boot_machine()
    profiler = SamplingProfiler(machine)
    assert profiler.guest == machine.guest_digest[:GUEST_PREFIX_LEN]
