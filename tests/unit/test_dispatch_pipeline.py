"""Exit-dispatch pipeline tests: stages, instrumentation, trap arming."""

import pytest

from repro.hypervisor.kvm import (
    ExitStage,
    GuestCrash,
    Hypervisor,
    VMEXIT_COST_CYCLES,
)
from repro.hypervisor.vcpu import SemanticsBridge, Vcpu
from repro.hypervisor.vmexit import VmExitReason
from repro.memory.ept import ExtendedPageTable
from repro.memory.mmu import Mmu
from repro.memory.paging import GuestPageTable
from repro.memory.physmem import PhysicalMemory

CODE = 0x00010000
#: park: hlt; jmp back to the hlt (keeps idle exits flowing until budget)
PARK = b"\xf4\xe9\xfa\xff\xff\xff"


class IdleBridge(SemanticsBridge):
    def interrupt_pending(self, vcpu):
        return False


def make_world(vcpu_count=1):
    physmem = PhysicalMemory()
    hv = Hypervisor(physmem)
    pt = GuestPageTable()
    pt.map_page(CODE, CODE)
    pt.map_page(0x00020000, 0x00020000)
    vcpus = []
    for cpu_id in range(vcpu_count):
        ept = ExtendedPageTable()
        mmu = Mmu(physmem, ept)
        mmu.set_cr3(pt)
        vcpu = Vcpu(cpu_id, mmu, IdleBridge())
        vcpu.eip = CODE
        vcpu.esp = 0x00020FF0 - cpu_id * 64
        hv.attach_vcpu(vcpu, ept)
        vcpus.append(vcpu)
    return physmem, hv, vcpus


class TestPipelineShape:
    def test_default_stage_order(self):
        _, hv, _ = make_world()
        assert [s.reason for s in hv.pipeline] == [
            VmExitReason.ADDRESS_TRAP,
            VmExitReason.INVALID_OPCODE,
            VmExitReason.HLT,
            VmExitReason.ERROR,
        ]

    def test_stage_for(self):
        _, hv, _ = make_world()
        stage = hv.stage_for(VmExitReason.HLT)
        assert stage is hv.pipeline[2]
        assert hv.stage_for(VmExitReason.BUDGET) is None

    def test_replacing_a_stage_keeps_position(self):
        _, hv, _ = make_world()
        handled = []

        class CountingHlt(ExitStage):
            reason = VmExitReason.HLT
            name = "hlt"

            def handle(self, hv_, vcpu, exit_):
                handled.append(exit_.rip)

        hv.add_stage(CountingHlt())
        assert [s.reason for s in hv.pipeline].count(VmExitReason.HLT) == 1
        physmem, vcpu = hv.physmem, hv.vcpus[0]
        physmem.write(CODE, PARK)
        hv.run(vcpu, budget=2)
        assert handled  # the plugged stage handled the HLT exit


class TestInstrumentation:
    def test_per_reason_counters_and_histograms(self):
        physmem, hv, (vcpu,) = make_world()
        physmem.write(CODE, b"\x90" + PARK)
        hv.register_address_trap(CODE, lambda v, e: None)
        hv.set_idle_handler(lambda v: None)
        hv.run(vcpu, budget=40)
        tel = hv.telemetry
        assert tel.counter("hv.exits.address_trap").value == 1
        assert tel.counter("hv.exits.hlt").value >= 1
        hist = tel.histogram("hv.exit_cycles.address_trap")
        assert hist.count == 1
        assert hist.min >= VMEXIT_COST_CYCLES

    def test_histogram_includes_handler_charges(self):
        physmem, hv, (vcpu,) = make_world()
        physmem.write(CODE, b"\x90" + PARK)
        hv.register_address_trap(
            CODE, lambda v, e: hv.charge(v, 10_000)
        )
        hv.set_idle_handler(lambda v: None)
        hv.run(vcpu, budget=40)
        hist = hv.telemetry.histogram("hv.exit_cycles.address_trap")
        assert hist.max >= VMEXIT_COST_CYCLES + 10_000

    def test_stats_view_reads_registry(self):
        physmem, hv, (vcpu,) = make_world()
        physmem.write(CODE, b"\x90" + PARK)
        hv.register_address_trap(CODE, lambda v, e: None)
        hv.set_idle_handler(lambda v: None)
        hv.run(vcpu, budget=40)
        assert hv.stats.address_traps == 1
        assert hv.stats.per_trap_address[CODE] == 1
        assert hv.stats.hlt_exits == hv.telemetry.counter("hv.exits.hlt").value

    def test_vmexit_trace_events(self):
        physmem, hv, (vcpu,) = make_world()
        physmem.write(CODE, b"\x90" + PARK)
        hv.telemetry.enable_tracing()
        hv.register_address_trap(CODE, lambda v, e: None)
        hv.set_idle_handler(lambda v: None)
        hv.run(vcpu, budget=40)
        reasons = [e.get("reason") for e in hv.telemetry.events("vmexit")]
        assert "ADDRESS_TRAP" in reasons
        assert "HLT" in reasons


class TestTrapArming:
    """Regression tests for mixed global/per-vCPU trap consumers."""

    def test_global_unregister_keeps_per_vcpu_arming(self):
        _, hv, (v0, v1) = make_world(vcpu_count=2)
        hv.register_address_trap(CODE, lambda v, e: None)
        hv.register_address_trap(CODE, lambda v, e: None, vcpu=v1)
        hv.unregister_address_trap(CODE)  # drop only the global consumer
        assert CODE not in v0.trap_addresses
        assert CODE in v1.trap_addresses  # per-vCPU arming survives
        assert hv.trap_consumers(CODE)  # handler entry survives too

    def test_per_vcpu_unregister_keeps_global_arming(self):
        _, hv, (v0, v1) = make_world(vcpu_count=2)
        hv.register_address_trap(CODE, lambda v, e: None)
        hv.register_address_trap(CODE, lambda v, e: None, vcpu=v1)
        hv.unregister_address_trap(CODE, vcpu=v1)
        # the global consumer still needs the trap on every vCPU
        assert CODE in v0.trap_addresses
        assert CODE in v1.trap_addresses
        assert hv.trap_consumers(CODE)

    def test_handler_dropped_once_all_consumers_gone(self):
        _, hv, (v0, v1) = make_world(vcpu_count=2)
        hv.register_address_trap(CODE, lambda v, e: None)
        hv.register_address_trap(CODE, lambda v, e: None, vcpu=v1)
        hv.unregister_address_trap(CODE)
        hv.unregister_address_trap(CODE, vcpu=v1)
        assert CODE not in v0.trap_addresses
        assert CODE not in v1.trap_addresses
        assert not hv.trap_consumers(CODE)
        assert CODE not in hv._trap_entries

    def test_unregister_unknown_address_is_noop(self):
        _, hv, (v0,) = make_world()
        hv.unregister_address_trap(0xDEAD)  # must not raise
        hv.unregister_address_trap(0xDEAD, vcpu=v0)

    def test_surviving_per_vcpu_trap_still_fires(self):
        physmem, hv, (v0, v1) = make_world(vcpu_count=2)
        physmem.write(CODE, b"\x90" + PARK)
        seen = []
        hv.register_address_trap(CODE, lambda v, e: seen.append(("g", v.cpu_id)))
        hv.register_address_trap(
            CODE, lambda v, e: seen.append(("p", v.cpu_id)), vcpu=v1
        )
        hv.unregister_address_trap(CODE)  # global consumer leaves
        hv.set_idle_handler(lambda v: None)
        hv.run(v0, budget=30)  # not armed here any more
        hv.run(v1, budget=30)  # still armed here
        assert [cpu for _, cpu in seen] == [1]

    def test_error_exit_crashes_and_counts(self):
        physmem, hv, (vcpu,) = make_world()
        vcpu.eip = 0x00050000  # unmapped -> translation error exit
        with pytest.raises(GuestCrash):
            hv.run(vcpu, budget=10)
        assert hv.telemetry.counter("hv.exits.error").value == 1
