"""Range list / K[app] unit tests (the paper's Section II operators)."""

import pytest

from repro.core.rangelist import (
    BASE_KERNEL,
    KernelProfile,
    RangeList,
    similarity_index,
)


class TestRangeList:
    def test_empty(self):
        rl = RangeList()
        assert len(rl) == 0
        assert rl.size == 0

    def test_add_single(self):
        rl = RangeList([(10, 20)])
        assert list(rl) == [(10, 20)]
        assert rl.size == 10
        assert len(rl) == 1

    def test_degenerate_range_ignored(self):
        rl = RangeList([(5, 5), (9, 3)])
        assert len(rl) == 0

    def test_merge_adjacent(self):
        rl = RangeList([(0, 10), (10, 20)])
        assert list(rl) == [(0, 20)]

    def test_merge_overlapping(self):
        rl = RangeList([(0, 15), (10, 30), (25, 40)])
        assert list(rl) == [(0, 40)]

    def test_disjoint_stay_separate(self):
        rl = RangeList([(0, 5), (10, 15)])
        assert list(rl) == [(0, 5), (10, 15)]
        assert rl.size == 10

    def test_insert_between(self):
        rl = RangeList([(0, 5), (20, 25)])
        rl.add(10, 12)
        assert list(rl) == [(0, 5), (10, 12), (20, 25)]

    def test_bridging_add_merges_both_sides(self):
        rl = RangeList([(0, 5), (10, 15)])
        rl.add(5, 10)
        assert list(rl) == [(0, 15)]

    def test_contains(self):
        rl = RangeList([(10, 20), (30, 40)])
        assert rl.contains(10)
        assert rl.contains(19)
        assert not rl.contains(20)
        assert rl.contains(35)
        assert not rl.contains(25)
        assert not rl.contains(9)

    def test_intersect_basic(self):
        a = RangeList([(0, 10), (20, 30)])
        b = RangeList([(5, 25)])
        both = a.intersect(b)
        assert list(both) == [(5, 10), (20, 25)]

    def test_intersect_disjoint_is_empty(self):
        a = RangeList([(0, 10)])
        b = RangeList([(10, 20)])
        assert len(a.intersect(b)) == 0

    def test_intersect_self_is_identity(self):
        a = RangeList([(3, 9), (100, 200)])
        assert a.intersect(a) == a

    def test_update_unions(self):
        a = RangeList([(0, 10)])
        a.update(RangeList([(5, 20), (30, 35)]))
        assert list(a) == [(0, 20), (30, 35)]

    def test_copy_is_independent(self):
        a = RangeList([(0, 10)])
        b = a.copy()
        b.add(20, 30)
        assert len(a) == 1
        assert len(b) == 2


class TestKernelProfile:
    def make(self, base=((0, 100),), ext4=((0, 50),)):
        profile = KernelProfile()
        for b, e in base:
            profile.add(BASE_KERNEL, b, e)
        for b, e in ext4:
            profile.add("ext4", b, e)
        return profile

    def test_size_sums_segments(self):
        assert self.make().size == 150

    def test_len_counts_elements(self):
        assert len(self.make(base=((0, 10), (20, 30)))) == 3

    def test_intersect_per_segment(self):
        a = self.make(base=((0, 100),), ext4=((0, 50),))
        b = self.make(base=((50, 150),), ext4=((100, 200),))
        both = a.intersect(b)
        assert both.segments[BASE_KERNEL].size == 50
        assert "ext4" not in both.segments

    def test_contains_by_segment(self):
        profile = self.make()
        assert profile.contains(BASE_KERNEL, 50)
        assert not profile.contains(BASE_KERNEL, 100)
        assert profile.contains("ext4", 10)
        assert not profile.contains("jbd2", 10)

    def test_serialization_roundtrip(self):
        profile = self.make(base=((0, 10), (32, 64)))
        data = profile.to_dict()
        back = KernelProfile.from_dict(data)
        assert back.to_dict() == data
        assert back.size == profile.size


class TestSimilarityIndex:
    def test_equation_one(self):
        a = KernelProfile()
        a.add(BASE_KERNEL, 0, 100)
        b = KernelProfile()
        b.add(BASE_KERNEL, 50, 250)
        # overlap 50, max size 200 -> 0.25
        assert similarity_index(a, b) == pytest.approx(0.25)

    def test_symmetric(self):
        a = KernelProfile()
        a.add(BASE_KERNEL, 0, 77)
        b = KernelProfile()
        b.add(BASE_KERNEL, 30, 130)
        assert similarity_index(a, b) == similarity_index(b, a)

    def test_identical_profiles_score_one(self):
        a = KernelProfile()
        a.add(BASE_KERNEL, 0, 10)
        assert similarity_index(a, a) == 1.0

    def test_disjoint_profiles_score_zero(self):
        a = KernelProfile()
        a.add(BASE_KERNEL, 0, 10)
        b = KernelProfile()
        b.add(BASE_KERNEL, 10, 20)
        assert similarity_index(a, b) == 0.0

    def test_empty_profiles(self):
        assert similarity_index(KernelProfile(), KernelProfile()) == 1.0
