"""ViewSwitcher decision-table unit tests (Algorithm 1 + safety rule)."""

import pytest

from repro.core.kernel_view import KernelViewConfig
from repro.core.rangelist import BASE_KERNEL, KernelProfile
from repro.core.switching import FULL_KERNEL_VIEW_INDEX, ViewSwitcher
from repro.core.view_manager import ViewBuilder
from repro.hypervisor.vmexit import VmExit, VmExitReason


def small_config(app):
    profile = KernelProfile()
    profile.add(BASE_KERNEL, 0xC0100000, 0xC0100400)
    return KernelViewConfig(app=app, profile=profile)


@pytest.fixture()
def world(machine):
    selector_map = {}
    switcher = ViewSwitcher(machine, lambda comm: selector_map.get(
        comm, FULL_KERNEL_VIEW_INDEX))
    builder = ViewBuilder(machine)
    for index, app in enumerate(("alpha", "beta")):
        view = builder.build(index, small_config(app))
        switcher.register_view(view)
        selector_map[app] = index
    return machine, switcher, selector_map


def fake_exit(machine):
    return VmExit(reason=VmExitReason.ADDRESS_TRAP, rip=0)


def trap_for(machine, switcher, comm):
    machine.runtime.publish_current_task(
        type("T", (), {"comm": comm, "pid": 42})(), 0
    )
    switcher.handle_context_switch_trap(machine.vcpu, fake_exit(machine))


class TestDecisionTable:
    def test_full_to_custom_defers(self, world):
        machine, switcher, _ = world
        trap_for(machine, switcher, "alpha")
        assert switcher._resume_armed[0]
        assert switcher.current_index[0] == FULL_KERNEL_VIEW_INDEX
        # the deferred switch lands at the resume trap
        switcher.handle_resume_userspace_trap(machine.vcpu, fake_exit(machine))
        assert switcher.current_index[0] == 0
        assert not switcher._resume_armed[0]

    def test_custom_to_full_switches_immediately(self, world):
        machine, switcher, _ = world
        switcher.switch_kernel_view(0, 0)
        trap_for(machine, switcher, "unknown-process")
        assert switcher.current_index[0] == FULL_KERNEL_VIEW_INDEX
        assert not switcher._resume_armed[0]

    def test_custom_to_different_custom_switches_immediately(self, world):
        """The safety refinement: no deferral across foreign views."""
        machine, switcher, _ = world
        switcher.switch_kernel_view(0, 0)
        trap_for(machine, switcher, "beta")
        assert switcher.current_index[0] == 1
        assert not switcher._resume_armed[0]

    def test_custom_to_same_custom_defers_and_skips(self, world):
        """Algorithm 1 pays the resume trap; the EPT work is skipped."""
        machine, switcher, _ = world
        switcher.switch_kernel_view(0, 0)
        trap_for(machine, switcher, "alpha")
        assert switcher._resume_armed[0]
        skipped_before = switcher.skipped_switches
        switcher.handle_resume_userspace_trap(machine.vcpu, fake_exit(machine))
        assert switcher.current_index[0] == 0
        assert switcher.skipped_switches == skipped_before + 1

    def test_eager_mode_never_arms_resume(self, world):
        machine, switcher, _ = world
        switcher.defer_to_resume = False
        trap_for(machine, switcher, "alpha")
        assert not switcher._resume_armed[0]
        assert switcher.current_index[0] == 0

    def test_remove_live_view_falls_back_to_full(self, world):
        machine, switcher, _ = world
        switcher.switch_kernel_view(1, 0)
        switcher.remove_view(1)
        assert switcher.current_index[0] == FULL_KERNEL_VIEW_INDEX
        assert 1 not in switcher.views

    def test_resume_trap_without_arming_is_noop(self, world):
        machine, switcher, _ = world
        before = switcher.resume_traps
        switcher.handle_resume_userspace_trap(machine.vcpu, fake_exit(machine))
        assert switcher.resume_traps == before

    def test_public_disarm_resume_traps(self, world):
        """Lifecycle owners cancel deferred switches via the public API."""
        machine, switcher, _ = world
        trap_for(machine, switcher, "alpha")
        assert switcher._resume_armed[0]
        switcher.disarm_resume_traps()
        assert not switcher._resume_armed[0]
        # the deferred switch was dropped, not applied
        assert switcher.current_index[0] == FULL_KERNEL_VIEW_INDEX
        # resume trap no longer registered with the hypervisor
        resume = machine.image.address_of("resume_userspace")
        assert resume not in machine.vcpu.trap_addresses

    def test_ept_restored_after_full_switch(self, world):
        machine, switcher, _ = world
        switcher.switch_kernel_view(0, 0)
        assert machine.ept.overridden_gpfns() != []
        switcher.switch_kernel_view(FULL_KERNEL_VIEW_INDEX, 0)
        assert machine.ept.overridden_gpfns() == []
