"""Time-series engine, quantiles, alert rules and the recorder.

Everything here drives :mod:`repro.obs.metrics` with synthetic clocks
and hand-built daemon views -- no sockets, no guests -- so the alert
semantics (debounce, guards, warmup refusal, staleness) are pinned
exactly.
"""

import json

import pytest

from repro.obs.metrics import (
    AlertCondition,
    AlertEngine,
    AlertRule,
    MetricsError,
    MetricsRecorder,
    MultiResolutionSeries,
    QuantileWindow,
    RingSeries,
    SeriesBank,
    default_rules,
    load_rules,
)

# ---------------------------------------------------------------------------
# ring series
# ---------------------------------------------------------------------------


def test_ring_series_append_latest_and_eviction():
    ring = RingSeries(capacity=3)
    for i in range(5):
        ring.append(float(i), float(i * 10))
    assert len(ring) == 3
    assert ring.evicted == 2
    assert ring.latest == 40.0
    assert ring.latest_time == 4.0
    assert ring.points() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]


def test_ring_series_clamps_backwards_clock():
    ring = RingSeries()
    ring.append(10.0, 1.0)
    ring.append(5.0, 2.0)  # NTP step backwards
    assert ring.points() == [(10.0, 1.0), (10.0, 2.0)]


def test_ring_series_delta_and_rate():
    ring = RingSeries()
    for t in range(11):
        ring.append(float(t), float(t * 2))  # +2/s
    assert ring.delta(5.0, now=10.0) == 10.0
    assert ring.rate(5.0, now=10.0) == pytest.approx(2.0)


def test_ring_series_refuses_partial_window():
    """No extrapolation during warmup: rules built on delta/rate must
    not fire before the ring spans their lookback."""
    ring = RingSeries()
    ring.append(100.0, 5.0)
    ring.append(101.0, 7.0)
    assert ring.delta(30.0, now=101.0) is None
    assert ring.rate(30.0, now=101.0) is None
    # once a point at/before now-30 exists, both evaluate (reference
    # is the newest point at/before the cutoff: t=101, value 7)
    ring.append(131.0, 9.0)
    assert ring.delta(30.0, now=131.0) == 2.0


def test_ring_series_window_and_capacity_validation():
    with pytest.raises(ValueError):
        RingSeries(capacity=1)
    ring = RingSeries()
    for t in range(10):
        ring.append(float(t), 0.0)
    assert len(ring.window(3.0, now=9.0)) == 4  # t in [6, 9]


def test_multi_resolution_cadence():
    series = MultiResolutionSeries(resolutions=(1.0, 10.0))
    for t in range(25):
        series.append(float(t), float(t))
    assert len(series.ring(1.0)) == 25
    # the 10s ring keeps one point per 10s bucket -- the bucket's last
    # sample (standard last-value downsampling), so latest never lags
    assert [t for t, _ in series.ring(10.0).points()] == [9.0, 19.0, 24.0]
    assert series.ring(10.0).latest == 24.0
    assert series.latest == 24.0


def test_sub_resolution_samples_refresh_latest():
    """Sampling faster than the finest ring must never freeze ``latest``
    -- a 50ms recorder cadence still reflects the newest value, so
    value-mode alerts can resolve immediately."""
    series = MultiResolutionSeries(resolutions=(1.0,))
    series.append(10.0, 1.0)
    series.append(10.05, 0.0)  # within the 1s bucket: refresh in place
    assert len(series.ring(1.0)) == 1
    assert series.latest == 0.0
    series.append(11.1, 7.0)  # next bucket: committed as a new point
    assert len(series.ring(1.0)) == 2
    assert series.latest == 7.0


def test_series_bank_labels_export_and_prometheus():
    bank = SeriesBank()
    bank.observe("serve.queue.depth", 1.0, 3.0)
    bank.observe(
        "serve.tenant.in_flight", 1.0, 2.0, label="acme", label_key="tenant"
    )
    bank.observe(
        "serve.tenant.in_flight", 1.0, 1.0, label="bob", label_key="tenant"
    )
    assert bank.names() == ["serve.queue.depth", "serve.tenant.in_flight"]
    assert bank.latest("serve.queue.depth") == 3.0
    assert bank.latest("serve.tenant.in_flight", "acme") == 2.0
    exported = bank.export()
    assert exported["serve.tenant.in_flight"]["label_key"] == "tenant"
    assert set(exported["serve.tenant.in_flight"]["series"]) == {
        "acme", "bob"
    }
    lines = bank.prometheus_lines(prefix="repro")
    assert "repro_serve_queue_depth 3" in lines
    assert 'repro_serve_tenant_in_flight{tenant="acme"} 2' in lines
    assert "# TYPE repro_serve_queue_depth gauge" in lines


def test_quantile_window_exact_and_bounded():
    win = QuantileWindow(window=100)
    for v in range(1, 101):
        win.observe(float(v))
    assert win.quantile(0.5) == pytest.approx(50.0, abs=1.0)
    assert win.quantile(0.99) == pytest.approx(99.0, abs=1.0)
    described = win.describe()
    assert described["count"] == 100
    assert described["mean"] == pytest.approx(50.5)
    assert described["p95"] == pytest.approx(95.0, abs=1.0)
    # bounded: old observations age out of the quantiles, not the count
    for _ in range(100):
        win.observe(1000.0)
    assert win.quantile(0.5) == 1000.0
    assert win.count == 200
    assert QuantileWindow().quantile(0.5) is None


# ---------------------------------------------------------------------------
# alert rules
# ---------------------------------------------------------------------------


def _bank_with(name, points, label=""):
    bank = SeriesBank()
    for t, v in points:
        bank.observe(name, float(t), float(v), label=label)
    return bank


def test_alert_condition_validation():
    with pytest.raises(MetricsError):
        AlertCondition(metric="x", op="!=", threshold=1.0)
    with pytest.raises(MetricsError):
        AlertCondition(metric="x", op=">", threshold=1.0, mode="stddev")
    with pytest.raises(MetricsError):
        AlertRule(name="", condition=AlertCondition("x", ">", 1.0))
    with pytest.raises(MetricsError):
        AlertRule(
            name="r", condition=AlertCondition("x", ">", 1.0), for_samples=0
        )


def test_value_condition_goes_stale():
    cond = AlertCondition(
        metric="serve.queue.depth", op=">", threshold=1.0, window=5.0
    )
    bank = _bank_with("serve.queue.depth", [(100.0, 9.0)])
    assert cond.evaluate(bank, "", 101.0) == 9.0
    # a dead sampler must not keep the alert pinned: stale -> None
    assert cond.evaluate(bank, "", 200.0) is None
    assert not cond.breached(None)


def test_engine_debounce_fire_and_resolve():
    rule = AlertRule(
        name="sat",
        condition=AlertCondition("u", ">=", 0.8),
        for_samples=2,
        description="queue saturated",
    )
    engine = AlertEngine(rules=[rule])
    bank = SeriesBank()

    bank.observe("u", 1.0, 0.9)
    assert engine.evaluate(bank, 1.0) == []  # streak 1 < for_samples
    bank.observe("u", 2.0, 0.95)
    fired = engine.evaluate(bank, 2.0)
    assert [t.state for t in fired] == ["firing"]
    assert fired[0].rule == "sat" and fired[0].value == 0.95
    assert engine.active()[0]["rule"] == "sat"
    # still firing: no duplicate transition
    bank.observe("u", 3.0, 0.99)
    assert engine.evaluate(bank, 3.0) == []
    bank.observe("u", 4.0, 0.1)
    resolved = engine.evaluate(bank, 4.0)
    assert [t.state for t in resolved] == ["resolved"]
    assert engine.active() == []


def test_engine_interrupted_streak_never_fires():
    rule = AlertRule(
        name="sat", condition=AlertCondition("u", ">=", 0.8), for_samples=3
    )
    engine = AlertEngine(rules=[rule])
    bank = SeriesBank()
    for t, v in [(1, 0.9), (2, 0.9), (3, 0.1), (4, 0.9), (5, 0.9)]:
        bank.observe("u", float(t), v)
        assert engine.evaluate(bank, float(t)) == []


def test_guard_blocks_breach():
    """worker-stall: finished flatlining only matters while jobs queue."""
    rule = AlertRule(
        name="stall",
        condition=AlertCondition(
            "done", "<=", 0.0, mode="delta", window=3.0
        ),
        guard=AlertCondition("depth", ">", 0.0),
        for_samples=1,
    )
    engine = AlertEngine(rules=[rule])
    bank = SeriesBank()
    # finished flat but nothing queued: guard holds the rule back
    for t in range(6):
        bank.observe("done", float(t), 5.0)
        bank.observe("depth", float(t), 0.0)
        assert engine.evaluate(bank, float(t)) == []
    # now jobs pile up while finished stays flat
    bank.observe("done", 6.0, 5.0)
    bank.observe("depth", 6.0, 3.0)
    fired = engine.evaluate(bank, 6.0)
    assert [t.state for t in fired] == ["firing"]


def test_labelled_rule_tracks_each_label_independently():
    rule = AlertRule(
        name="budget",
        condition=AlertCondition("remaining", "<", 0.1),
        for_samples=1,
    )
    engine = AlertEngine(rules=[rule])
    bank = SeriesBank()
    bank.observe("remaining", 1.0, 0.05, label="acme", label_key="tenant")
    bank.observe("remaining", 1.0, 0.9, label="bob", label_key="tenant")
    fired = engine.evaluate(bank, 1.0)
    assert [(t.rule, t.label, t.state) for t in fired] == [
        ("budget", "acme", "firing")
    ]


def test_rule_roundtrip_and_load_rules(tmp_path):
    rules = default_rules()
    path = tmp_path / "rules.json"
    path.write_text(json.dumps([r.to_dict() for r in rules]))
    loaded = load_rules(str(path))
    assert loaded == rules  # frozen dataclasses compare by value

    path.write_text("{not json")
    with pytest.raises(MetricsError, match="unreadable"):
        load_rules(str(path))
    path.write_text('{"name": "x"}')
    with pytest.raises(MetricsError, match="JSON list"):
        load_rules(str(path))
    dupe = rules[0].to_dict()
    path.write_text(json.dumps([dupe, dupe]))
    with pytest.raises(MetricsError, match="duplicate"):
        load_rules(str(path))
    with pytest.raises(MetricsError, match="missing required field"):
        AlertCondition.from_dict({"op": ">"})


# ---------------------------------------------------------------------------
# the recorder, over synthetic daemon views
# ---------------------------------------------------------------------------


def _view(
    now,
    depth=0,
    running=0,
    max_depth=4,
    jobs=(),
    tenants=None,
    pool=None,
    serve_counters=None,
    serve_labelled=None,
    jobs_labelled=None,
):
    return {
        "now": now,
        "queue": {
            "depth": depth,
            "running": running,
            "max_depth": max_depth,
            "accepting": True,
            "states": {},
            "tenants": tenants or {},
        },
        "jobs": list(jobs),
        "pool": pool or {},
        "workers": {"alive": 1, "desired": 1},
        "serve_counters": serve_counters or {},
        "serve_labelled": serve_labelled or {},
        "jobs_counters": {},
        "jobs_labelled": jobs_labelled or {},
    }


def test_recorder_queue_saturation_fires_and_resolves():
    rec = MetricsRecorder(interval=1.0)
    assert rec.sample(_view(1.0, depth=4, running=1)) == []
    fired = rec.sample(_view(2.0, depth=4, running=1))
    assert [(t.rule, t.state) for t in fired] == [
        ("queue-saturation", "firing")
    ]
    resolved = rec.sample(_view(3.0, depth=0, running=1))
    assert [(t.rule, t.state) for t in resolved] == [
        ("queue-saturation", "resolved")
    ]
    assert [t.state for t in rec.alert_history] == ["firing", "resolved"]
    assert rec.samples == 3


def test_recorder_tenant_budget_imminent():
    rec = MetricsRecorder(interval=1.0)
    tenants = {
        "acme": {
            "in_flight": 1,
            "charged_cycles": 950,
            "cycle_budget": 1000,
            "remaining_cycles": 50,
            "rejections": {},
        }
    }
    fired = rec.sample(_view(1.0, tenants=tenants))
    assert [(t.rule, t.label, t.state) for t in fired] == [
        ("tenant-budget-imminent", "acme", "firing")
    ]
    assert rec.bank.latest(
        "serve.tenant.budget_remaining_ratio", "acme"
    ) == pytest.approx(0.05)


def test_recorder_worker_stall_needs_full_window_and_guard():
    rec = MetricsRecorder(interval=1.0)
    finished = {"serve.completed": {"default": 2}}
    # jobs queued, finished flat -- but the 30s delta window is not
    # covered yet, so the stall rule cannot fire during warmup
    for t in range(1, 29):
        assert rec.sample(
            _view(float(t), depth=2, serve_labelled=finished)
        ) == []
    fired = []
    for t in range(29, 40):
        fired += rec.sample(
            _view(float(t), depth=2, serve_labelled=finished)
        )
        if fired:
            break
    assert [(t.rule, t.state) for t in fired] == [("worker-stall", "firing")]
    # a completion resolves it on the next tick
    resolved = rec.sample(
        _view(41.0, depth=2,
              serve_labelled={"serve.completed": {"default": 3}})
    )
    assert ("worker-stall", "resolved") in [
        (t.rule, t.state) for t in resolved
    ]


def test_recorder_drift_recurrence_from_job_telemetry():
    rec = MetricsRecorder(interval=1.0)
    verdicts = {"recovery.verdicts": {"benign": 5}}
    rec.sample(_view(1.0, jobs_labelled=verdicts))
    rec.sample(
        _view(70.0, jobs_labelled={"recovery.verdicts": {"benign": 5}})
    )
    fired = rec.sample(
        _view(
            80.0,
            jobs_labelled={
                "recovery.verdicts": {"benign": 5, "anomalous": 2}
            },
        )
    )
    assert [(t.rule, t.label, t.state) for t in fired] == [
        ("drift-recurrence", "anomalous", "firing")
    ]


def test_recorder_pool_hit_ratio_only_with_traffic():
    rec = MetricsRecorder(interval=1.0)
    pool = {"abc": {"label": "default", "warm": 2, "hits": 0, "misses": 0}}
    for t in range(1, 15):
        rec.sample(_view(float(t), pool=pool))
    # idle pool: no hit_ratio series, so pool-hit-collapse cannot fire
    assert rec.bank.latest("serve.pool.hit_ratio") is None
    pool = {"abc": {"label": "default", "warm": 2, "hits": 1, "misses": 3}}
    rec.sample(_view(15.0, pool=pool))
    assert rec.bank.latest("serve.pool.hit_ratio") == pytest.approx(0.25)
    assert rec.bank.latest("serve.pool.warm", "default") == 2.0


def test_recorder_tenant_latency_quantiles_and_slo():
    rec = MetricsRecorder(interval=1.0, slo_latency=2.0)
    jobs = [
        {
            "id": f"job-{i}",
            "tenant": "acme",
            "state": "done",
            "submitted_at": 0.0,
            "started_at": 0.5,
            "finished_at": float(i),  # latencies 1..4
        }
        for i in range(1, 5)
    ]
    rec.sample(_view(5.0, jobs=jobs))
    # re-sampling the same finished jobs must not double-count
    rec.sample(_view(6.0, jobs=jobs))
    described = rec.describe()
    acme = described["tenants"]["acme"]
    assert acme["latency"]["count"] == 4
    assert acme["queue_wait"]["count"] == 4
    assert acme["queue_wait"]["p50"] == pytest.approx(0.5)
    assert acme["slo"] == {
        "target_seconds": 2.0,
        "met": 2,  # latencies 1, 2
        "missed": 2,  # latencies 3, 4
        "compliance": 0.5,
    }
    assert rec.bank.latest("serve.tenant.latency_p95", "acme") is not None


def test_recorder_failed_jobs_skip_latency_but_not_queue_wait():
    rec = MetricsRecorder(interval=1.0)
    jobs = [
        {
            "id": "job-1",
            "tenant": "acme",
            "state": "failed",
            "submitted_at": 0.0,
            "started_at": 1.0,
            "finished_at": 2.0,
        }
    ]
    rec.sample(_view(3.0, jobs=jobs))
    acme = rec.describe()["tenants"]["acme"]
    assert acme["latency"]["count"] == 0
    assert acme["queue_wait"]["count"] == 1


def test_recorder_describe_and_export_shapes():
    rec = MetricsRecorder(interval=0.5)
    rec.sample(_view(1.0, depth=1, running=1))
    described = rec.describe()
    assert described["samples"] == 1
    assert described["interval"] == 0.5
    assert described["queue"]["depth"] == 1.0
    assert described["queue"]["utilization"] == 0.25
    assert described["workers"]["utilization"] == 1.0
    assert described["alerts"] == {"active": [], "transitions": 0}
    exported = rec.export_series()
    assert exported["samples"] == 1
    assert "serve.queue.depth" in exported["series"]
    depth = exported["series"]["serve.queue.depth"]["series"][""]
    assert depth["1.0"]["points"] == [[1.0, 1.0]]


def test_recorder_prometheus_includes_alert_states():
    rec = MetricsRecorder(interval=1.0)
    rec.sample(_view(1.0, depth=4))
    rec.sample(_view(2.0, depth=4))
    text = rec.to_prometheus()
    assert text.endswith("\n")
    assert "repro_serve_queue_depth 4" in text
    assert 'repro_serve_alert_state{rule="queue-saturation"} 1' in text
    assert 'repro_serve_alert_state{rule="pool-hit-collapse"' in text
    rec.sample(_view(3.0, depth=0))
    assert (
        'repro_serve_alert_state{rule="queue-saturation"} 0'
        in rec.to_prometheus()
    )


def test_recorder_rejects_bad_interval():
    with pytest.raises(ValueError):
        MetricsRecorder(interval=0.0)
