"""CLI smoke tests (small scales to keep them fast)."""

import pytest

from repro.cli import main


def test_profile_command(tmp_path, capsys):
    out = tmp_path / "top.view.json"
    assert main(["--scale", "2", "profile", "top", "-o", str(out)]) == 0
    captured = capsys.readouterr().out
    assert "kernel view" in captured
    assert out.exists()


def test_similarity_subset(capsys):
    assert main(["--scale", "2", "similarity", "top", "gzip"]) == 0
    captured = capsys.readouterr().out
    assert "top" in captured and "gzip" in captured
    assert "min" in captured


def test_unixbench_baseline(capsys):
    assert main(["--scale", "2", "unixbench", "--views", "0"]) == 0
    captured = capsys.readouterr().out
    assert "Pipe-based Context Switching" in captured


def test_security_single_attack(capsys):
    assert main(["--scale", "2", "security", "--attack", "Injectso"]) == 0
    captured = capsys.readouterr().out
    assert "Injectso" in captured
    assert "DETECTED" in captured


def test_inspect_command(tmp_path, capsys):
    out = tmp_path / "gzip.view.json"
    main(["--scale", "2", "profile", "gzip", "-o", str(out)])
    capsys.readouterr()
    assert main(["inspect", str(out)]) == 0
    captured = capsys.readouterr().out
    assert "app:   gzip" in captured
    assert "base kernel" in captured


def test_trace_command(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["--scale", "2", "trace", "top", "-o", str(out)]) == 0
    captured = capsys.readouterr().out
    assert "== timeline ==" in captured
    assert "ctxsw_trap" in captured
    assert "view_switch" in captured
    assert out.exists()


def test_trace_unknown_app(capsys):
    assert main(["trace", "no-such-app"]) != 0
    assert "unknown application" in capsys.readouterr().err


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


# ---------------------------------------------------------------------------
# failure exit codes (every verb must signal failure to scripts/CI)
# ---------------------------------------------------------------------------


def test_profile_unknown_app_fails(capsys):
    assert main(["profile", "no-such-app"]) != 0
    err = capsys.readouterr().err
    assert "unknown application" in err
    assert "no-such-app" in err


def test_similarity_unknown_app_fails(capsys):
    assert main(["similarity", "top", "no-such-app"]) != 0
    assert "unknown application" in capsys.readouterr().err


def test_security_unknown_attack_fails(capsys):
    assert main(["security", "--attack", "NoSuchSample"]) != 0
    assert "no malware sample" in capsys.readouterr().err


def test_inspect_missing_file_fails(tmp_path, capsys):
    assert main(["inspect", str(tmp_path / "absent.json")]) != 0
    assert "unreadable" in capsys.readouterr().err


def test_inspect_malformed_file_fails(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    assert main(["inspect", str(path)]) != 0
    assert "unreadable" in capsys.readouterr().err


def test_fleet_without_spec_or_apps_fails(capsys):
    assert main(["fleet"]) != 0
    assert "spec file or --apps" in capsys.readouterr().err


def test_fleet_unknown_app_fails(capsys):
    assert main(["fleet", "--apps", "no-such-app"]) != 0
    assert "unknown application" in capsys.readouterr().err


def test_fleet_malformed_spec_fails(tmp_path, capsys):
    path = tmp_path / "spec.json"
    path.write_text('{"jobs": []}')
    assert main(["fleet", str(path)]) != 0
    assert "non-empty" in capsys.readouterr().err


def test_fleet_no_offline_with_empty_library_fails(tmp_path, capsys):
    lib = tmp_path / "lib"
    code = main(
        ["fleet", "--apps", "top", "--library", str(lib), "--no-offline"]
    )
    assert code != 0
    assert "no profile" in capsys.readouterr().err


def test_trace_with_no_events_exits_zero(monkeypatch, capsys):
    # regression: an event-free run must render an explicit marker and
    # succeed, not print a blank timeline (or worse, crash)
    from repro.telemetry.core import Telemetry

    monkeypatch.setattr(Telemetry, "enable_tracing", lambda self: None)
    assert main(["--scale", "2", "trace", "top"]) == 0
    captured = capsys.readouterr().out
    assert "(no events recorded)" in captured


def test_format_timeline_empty_is_marked():
    from repro.telemetry import format_timeline

    assert format_timeline([]) == "(no events recorded)"


def test_trace_journal_then_forensics(tmp_path, capsys):
    journal = tmp_path / "run.jsonl"
    assert main(
        ["--scale", "2", "trace", "top", "--journal", str(journal)]
    ) == 0
    capsys.readouterr()
    assert journal.exists()
    assert main(["forensics", str(journal)]) == 0
    captured = capsys.readouterr().out
    assert "causal chains" in captured
    assert "vmexit" in captured


def test_trace_attack_requires_the_host_app(capsys):
    assert main(["--scale", "2", "trace", "top", "--attack", "KBeast"]) != 0
    assert "infects 'bash'" in capsys.readouterr().err
    assert main(["--scale", "2", "trace", "top", "--attack", "NoSuch"]) != 0
    assert "no malware sample" in capsys.readouterr().err


def test_forensics_rejects_garbage(tmp_path, capsys):
    path = tmp_path / "garbage.jsonl"
    path.write_text("this is not a journal\n")
    assert main(["forensics", str(path)]) == 2
    assert "error" in capsys.readouterr().err


def test_forensics_legacy_snapshot_fallback(tmp_path, capsys):
    snap = tmp_path / "telemetry.json"
    assert main(
        ["--scale", "2", "trace", "top", "-o", str(snap)]
    ) == 0
    capsys.readouterr()
    assert main(["forensics", str(snap)]) == 0
    captured = capsys.readouterr().out
    assert "legacy" in captured
    assert "(cycles, rip)" in captured


def test_flame_command(tmp_path, capsys):
    out = tmp_path / "flame.json"
    assert main(
        ["--scale", "2", "flame", "find_pipe", "--seed", "7",
         "-o", str(out)]
    ) == 0
    captured = capsys.readouterr().out
    assert "samples" in captured
    assert "FUNCTION" in captured  # the top-N table header
    assert "all [" in captured  # the flame graph root
    assert out.exists()


def test_flame_unknown_app(capsys):
    assert main(["flame", "no-such-app"]) == 2
    assert "unknown application" in capsys.readouterr().err


def test_probe_command(capsys):
    assert main(
        ["--scale", "2", "probe", "pipe_write", "--app", "find_pipe",
         "--seed", "7"]
    ) == 0
    captured = capsys.readouterr().out
    assert "pipe_write" in captured
    assert "probe hit(s) recorded" in captured


def test_probe_unknown_symbol(capsys):
    assert main(
        ["--scale", "2", "probe", "definitely_not_a_symbol",
         "--app", "find_pipe"]
    ) == 2
    assert "unknown kernel symbol" in capsys.readouterr().err


def test_report_rejects_unknown_section(capsys):
    assert main(["report", "--sections", "nonsense"]) == 2
    err = capsys.readouterr().err
    assert "unknown report section" in err
    assert "nonsense" in err


def test_guest_list_shows_variants(capsys):
    assert main(["guest", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("default", "no-net", "smp2-nonet", "qemu-tsc"):
        assert name in out


def test_guest_show_and_digest(capsys):
    from repro.guest.config import VARIANTS

    assert main(["guest", "show", "no-net"]) == 0
    assert "jbd2, ext4" in capsys.readouterr().out
    assert main(["guest", "digest", "no-net"]) == 0
    assert capsys.readouterr().out.strip() == VARIANTS["no-net"].digest()
    assert main(["guest", "digest", "no-net", "--build"]) == 0
    assert capsys.readouterr().out.strip() == VARIANTS["no-net"].build_digest()


def test_guest_diff_and_identical(capsys):
    assert main(["guest", "diff", "default", "no-net"]) == 0
    assert "modules:" in capsys.readouterr().out
    assert main(["guest", "diff", "default", "default"]) == 0
    assert "identical" in capsys.readouterr().out


def test_guest_show_unknown_variant_fails(capsys):
    assert main(["guest", "show", "nosuch"]) != 0
    assert "unknown guest variant" in capsys.readouterr().err


def test_trace_rejects_bad_guest_flags(capsys):
    assert main(["trace", "top", "--guest", "nosuch"]) != 0
    assert "unknown guest variant" in capsys.readouterr().err


def test_fleet_matrix_requires_apps(capsys):
    assert main(["fleet", "--matrix"]) != 0
    assert "--matrix needs --apps" in capsys.readouterr().err
