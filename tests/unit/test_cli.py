"""CLI smoke tests (small scales to keep them fast)."""

import pytest

from repro.cli import main


def test_profile_command(tmp_path, capsys):
    out = tmp_path / "top.view.json"
    assert main(["--scale", "2", "profile", "top", "-o", str(out)]) == 0
    captured = capsys.readouterr().out
    assert "kernel view" in captured
    assert out.exists()


def test_similarity_subset(capsys):
    assert main(["--scale", "2", "similarity", "top", "gzip"]) == 0
    captured = capsys.readouterr().out
    assert "top" in captured and "gzip" in captured
    assert "min" in captured


def test_unixbench_baseline(capsys):
    assert main(["--scale", "2", "unixbench", "--views", "0"]) == 0
    captured = capsys.readouterr().out
    assert "Pipe-based Context Switching" in captured


def test_security_single_attack(capsys):
    assert main(["--scale", "2", "security", "--attack", "Injectso"]) == 0
    captured = capsys.readouterr().out
    assert "Injectso" in captured
    assert "DETECTED" in captured


def test_inspect_command(tmp_path, capsys):
    out = tmp_path / "gzip.view.json"
    main(["--scale", "2", "profile", "gzip", "-o", str(out)])
    capsys.readouterr()
    assert main(["inspect", str(out)]) == 0
    captured = capsys.readouterr().out
    assert "app:   gzip" in captured
    assert "base kernel" in captured


def test_trace_command(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["--scale", "2", "trace", "top", "-o", str(out)]) == 0
    captured = capsys.readouterr().out
    assert "== timeline ==" in captured
    assert "ctxsw_trap" in captured
    assert "view_switch" in captured
    assert out.exists()


def test_trace_unknown_app(capsys):
    assert main(["trace", "no-such-app"]) == 1
    assert "unknown application" in capsys.readouterr().out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
