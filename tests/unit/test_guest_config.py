"""GuestConfig validation, digests, round-trips, and variant resolution."""

import json

import pytest

from repro.guest.config import (
    CATALOG_LOAD_ORDER,
    DEFAULT_GUEST_CONFIG,
    KVM_PVCLOCK,
    MAX_VCPUS,
    QEMU_TSC,
    VARIANTS,
    GuestConfig,
    GuestConfigError,
    module_dependencies,
    resolve_guest,
)
from repro.kernel.runtime import TIMER_PERIOD_CYCLES, TIMESLICE_TICKS, Platform


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------


def test_default_config_matches_historical_build():
    assert DEFAULT_GUEST_CONFIG.modules == CATALOG_LOAD_ORDER
    assert DEFAULT_GUEST_CONFIG.platform == KVM_PVCLOCK
    assert DEFAULT_GUEST_CONFIG.vcpus == 1
    assert DEFAULT_GUEST_CONFIG.timer_period == TIMER_PERIOD_CYCLES
    assert DEFAULT_GUEST_CONFIG.timeslice_ticks == TIMESLICE_TICKS


def test_unknown_module_rejected_with_field():
    with pytest.raises(GuestConfigError, match="modules: unknown module 'jbd3'"):
        GuestConfig(modules=("jbd3",))


def test_duplicate_modules_rejected():
    with pytest.raises(GuestConfigError, match="duplicate module"):
        GuestConfig(modules=("jbd2", "jbd2"))


def test_dependency_closure_ext4_requires_jbd2():
    deps = module_dependencies()
    assert "jbd2" in deps["ext4"]
    with pytest.raises(GuestConfigError, match="'ext4' requires jbd2"):
        GuestConfig(modules=("ext4",))


def test_module_order_normalized_to_load_order():
    config = GuestConfig(modules=("ext4", "jbd2"))
    assert config.modules == ("jbd2", "ext4")


def test_platform_aliases_canonicalized():
    assert GuestConfig(platform=Platform.KVM).platform == KVM_PVCLOCK
    assert GuestConfig(platform=Platform.QEMU).platform == QEMU_TSC
    assert GuestConfig(platform="qemu-tsc").runtime_platform() == Platform.QEMU


def test_unknown_platform_rejected():
    with pytest.raises(GuestConfigError, match="platform: unknown platform"):
        GuestConfig(platform="xen")


@pytest.mark.parametrize("vcpus", [0, -1, MAX_VCPUS + 1, "2"])
def test_vcpus_bounds(vcpus):
    with pytest.raises(GuestConfigError, match="vcpus"):
        GuestConfig(vcpus=vcpus)


@pytest.mark.parametrize("field", ["timer_period", "timeslice_ticks"])
def test_timer_fields_must_be_positive(field):
    with pytest.raises(GuestConfigError, match=field):
        GuestConfig(**{field: 0})


def test_error_carries_field_and_message():
    with pytest.raises(GuestConfigError) as excinfo:
        GuestConfig(modules=("nosuch",))
    assert excinfo.value.field == "modules"
    assert str(excinfo.value) == f"modules: {excinfo.value.message}"


# ---------------------------------------------------------------------------
# digests
# ---------------------------------------------------------------------------


def test_digest_is_stable_and_name_independent():
    assert GuestConfig().digest() == DEFAULT_GUEST_CONFIG.digest()
    assert GuestConfig(name="renamed").digest() == DEFAULT_GUEST_CONFIG.digest()


def test_platform_changes_digest_but_not_build_digest():
    kvm = DEFAULT_GUEST_CONFIG
    qemu = kvm.with_platform(QEMU_TSC)
    assert kvm.digest() != qemu.digest()
    assert kvm.build_digest() == qemu.build_digest()


def test_build_fields_change_both_digests():
    smp = GuestConfig(vcpus=2)
    assert smp.digest() != DEFAULT_GUEST_CONFIG.digest()
    assert smp.build_digest() != DEFAULT_GUEST_CONFIG.build_digest()


def test_label_prefers_name_then_digest_prefix():
    assert DEFAULT_GUEST_CONFIG.label() == "default"
    unnamed = GuestConfig(vcpus=2)
    assert unnamed.label() == unnamed.digest()[:12]


# ---------------------------------------------------------------------------
# JSON round trip
# ---------------------------------------------------------------------------


def test_dict_round_trip_preserves_identity():
    config = VARIANTS["smp2-nonet"]
    clone = GuestConfig.from_dict(config.to_dict())
    assert clone == config
    assert clone.digest() == config.digest()


def test_file_round_trip(tmp_path):
    path = tmp_path / "guest.json"
    VARIANTS["no-net"].save(path)
    assert GuestConfig.load(path) == VARIANTS["no-net"]


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(GuestConfigError, match="unknown guest config key"):
        GuestConfig.from_dict({"vcpu": 2})


def test_from_dict_rejects_non_integer_scalars():
    with pytest.raises(GuestConfigError, match="vcpus must be an integer"):
        GuestConfig.from_dict({"vcpus": True})
    with pytest.raises(GuestConfigError, match="modules must be a list"):
        GuestConfig.from_dict({"modules": "ext4"})


# ---------------------------------------------------------------------------
# variants / resolution / diff
# ---------------------------------------------------------------------------


def test_named_variants_are_valid_and_distinct():
    digests = {config.digest() for config in VARIANTS.values()}
    assert len(digests) == len(VARIANTS)
    for name, config in VARIANTS.items():
        assert config.name == name


def test_resolve_guest_forms(tmp_path):
    assert resolve_guest(None) is DEFAULT_GUEST_CONFIG
    assert resolve_guest("no-net") is VARIANTS["no-net"]
    assert resolve_guest(DEFAULT_GUEST_CONFIG) is DEFAULT_GUEST_CONFIG
    assert resolve_guest({"vcpus": 2}).vcpus == 2
    path = tmp_path / "v.json"
    path.write_text(json.dumps({"vcpus": 3, "name": "three"}))
    assert resolve_guest(str(path)).vcpus == 3


def test_resolve_guest_unknown_name_lists_variants():
    with pytest.raises(GuestConfigError, match="unknown guest variant"):
        resolve_guest("nosuch-variant")


def test_diff_reports_changed_fields_only():
    rows = DEFAULT_GUEST_CONFIG.diff(VARIANTS["smp2-nonet"])
    assert any(row.startswith("modules:") for row in rows)
    assert any(row.startswith("vcpus:") for row in rows)
    assert not any(row.startswith("platform:") for row in rows)
    assert DEFAULT_GUEST_CONFIG.diff(GuestConfig(name="other")) == []
