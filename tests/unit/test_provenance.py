"""Recovery log / provenance unit tests."""

from repro.core.provenance import (
    BacktraceFrame,
    DEFAULT_BENIGN_RECOVERIES,
    RecoveryEvent,
    RecoveryLog,
)


def make_event(fn="inet_create", app="top", interrupt=False, frames=()):
    return RecoveryEvent(
        cycles=1000,
        rip=0xC0200000,
        recovered=f"<{fn}+0x0>",
        function_start=0xC0200000,
        function_end=0xC0200100,
        pid=7,
        comm=app,
        view_app=app,
        backtrace=tuple(frames),
        in_interrupt=interrupt,
    )


def test_function_name_strips_decoration():
    assert make_event("sys_bind").function_name == "sys_bind"


def test_unknown_frames_detected():
    frame = BacktraceFrame(0xF8078BBE, "<UNKNOWN>")
    event = make_event(frames=[frame])
    assert event.has_unknown_frames
    assert frame.is_unknown


def test_known_frames_not_unknown():
    frame = BacktraceFrame(0xC021A526, "<do_sys_poll+0x136>")
    assert not frame.is_unknown
    assert not make_event(frames=[frame]).has_unknown_frames


def test_format_matches_paper_layout():
    frame = BacktraceFrame(0xC021A526, "<do_sys_poll+0x136>")
    text = make_event("pipe_poll", frames=[frame]).format()
    assert text.startswith("Recover 0xc0200000 <pipe_poll+0x0> for kernel[top]")
    assert "|-- 0xc021a526 <do_sys_poll+0x136>" in text


def test_log_queries():
    log = RecoveryLog()
    log.append(make_event("a", app="top"))
    log.append(make_event("b", app="apache"))
    log.append(make_event("c", app="top", interrupt=True))
    assert len(log) == 3
    assert [e.function_name for e in log.for_app("top")] == ["a", "c"]
    assert log.recovered_functions("apache") == ["b"]


def test_anomalous_excludes_interrupt_and_benign():
    log = RecoveryLog()
    log.append(make_event("kvm_clock_read"))
    log.append(make_event("timer_tick_thing", interrupt=True))
    log.append(make_event("inet_create"))
    anomalous = log.anomalous(benign=DEFAULT_BENIGN_RECOVERIES)
    assert [e.function_name for e in anomalous] == ["inet_create"]


def test_kvm_clock_chain_is_default_benign():
    for fn in (
        "kvm_clock_get_cycles",
        "kvm_clock_read",
        "pvclock_clocksource_read",
        "native_read_tsc",
    ):
        assert fn in DEFAULT_BENIGN_RECOVERIES


def test_report_and_clear():
    log = RecoveryLog()
    log.append(make_event("x"))
    assert "Recover" in log.report()
    log.clear()
    assert len(log) == 0
