"""Fleet matrix expansion and per-job guest validation errors."""

import pytest

from repro.fleet.spec import (
    FleetJob,
    FleetSpec,
    FleetSpecError,
    uniform_spec,
)
from repro.guest.config import DEFAULT_GUEST_CONFIG, VARIANTS


# ---------------------------------------------------------------------------
# matrix expansion
# ---------------------------------------------------------------------------


def test_matrix_expands_guest_x_app_x_attack():
    spec = FleetSpec.from_dict({
        "matrix": {
            "apps": ["top"],
            "attacks": ["Injectso"],
            "guests": ["default", "no-net"],
        }
    })
    assert [job.name for job in spec.jobs] == [
        "top@default#0",
        "top+Injectso@default#0",
        "top@no-net#0",
        "top+Injectso@no-net#0",
    ]
    digests = {job.guest_config().digest() for job in spec.jobs}
    assert digests == {
        DEFAULT_GUEST_CONFIG.digest(), VARIANTS["no-net"].digest()
    }


def test_matrix_without_guests_yields_unpinned_jobs():
    spec = FleetSpec.from_dict({"matrix": {"apps": ["top", "gzip"]}})
    assert [job.name for job in spec.jobs] == ["top#0", "gzip#0"]
    assert all(job.guest is None for job in spec.jobs)


def test_matrix_attack_only_lands_on_its_host_app():
    spec = FleetSpec.from_dict({
        "matrix": {"apps": ["top", "gzip"], "attacks": ["Injectso"]}
    })
    infected = [job for job in spec.jobs if job.attack]
    assert [job.app for job in infected] == ["top"]


def test_matrix_attack_with_absent_host_is_an_error():
    with pytest.raises(
        FleetSpecError, match=r"matrix\.attacks\[0\].*not in matrix\.apps"
    ):
        FleetSpec.from_dict(
            {"matrix": {"apps": ["gzip"], "attacks": ["Injectso"]}}
        )


def test_matrix_unknown_attack_names_index():
    with pytest.raises(
        FleetSpecError, match=r"matrix\.attacks\[1\]: unknown malware sample"
    ):
        FleetSpec.from_dict({
            "matrix": {
                "apps": ["top"], "attacks": ["Injectso", "Stuxnet"]
            }
        })


def test_matrix_unknown_guest_names_index():
    with pytest.raises(
        FleetSpecError, match=r"matrix\.guests\[1\]: unknown guest variant"
    ):
        FleetSpec.from_dict({
            "matrix": {"apps": ["top"], "guests": ["default", "nosuch"]}
        })


def test_matrix_rejects_unknown_keys_and_empty_apps():
    with pytest.raises(FleetSpecError, match=r"matrix: unknown keys"):
        FleetSpec.from_dict({"matrix": {"apps": ["top"], "variants": []}})
    with pytest.raises(FleetSpecError, match=r"matrix\.apps: .*non-empty"):
        FleetSpec.from_dict({"matrix": {"apps": []}})


def test_matrix_composes_with_explicit_jobs():
    spec = FleetSpec.from_dict({
        "jobs": [{"app": "gzip"}],
        "matrix": {"apps": ["top"], "guests": ["no-net"]},
    })
    assert [job.name for job in spec.jobs] == ["gzip#0", "top@no-net#0"]


# ---------------------------------------------------------------------------
# per-job guest validation errors (field-addressed)
# ---------------------------------------------------------------------------


def test_job_guest_error_names_job_index_and_field():
    with pytest.raises(
        FleetSpecError,
        match=r"jobs\[3\]\.guest\.modules: unknown module 'jbd3'",
    ):
        FleetSpec.from_dict({
            "jobs": [
                {"app": "top"},
                {"app": "top"},
                {"app": "gzip"},
                {"app": "top", "guest": {"modules": ["jbd3"]}},
            ]
        })


def test_job_app_and_attack_errors_name_index():
    with pytest.raises(
        FleetSpecError, match=r"jobs\[0\]\.app: unknown application"
    ):
        FleetSpec.from_dict({"jobs": [{"app": "nginx"}]})
    with pytest.raises(
        FleetSpecError, match=r"jobs\[1\]\.attack: 'Injectso' infects 'top'"
    ):
        FleetSpec.from_dict(
            {"jobs": [{"app": "top"},
                      {"app": "gzip", "attack": "Injectso"}]}
        )


def test_spec_level_guest_is_the_default_for_all_jobs():
    spec = FleetSpec.from_dict({
        "guest": "no-net",
        "jobs": [
            {"app": "top"},
            {"app": "top", "guest": {"vcpus": 2, "name": "smp"}},
        ],
    })
    assert spec.jobs[0].guest is VARIANTS["no-net"]
    assert spec.jobs[1].guest.vcpus == 2


def test_spec_level_guest_error_is_field_addressed():
    with pytest.raises(FleetSpecError, match=r"guest\.vcpus: "):
        FleetSpec.from_dict(
            {"guest": {"vcpus": 0}, "jobs": [{"app": "top"}]}
        )


# ---------------------------------------------------------------------------
# job identity / serialization with guests
# ---------------------------------------------------------------------------


def test_job_identity_includes_guest_label():
    job = FleetJob(app="top", attack="Injectso", guest=VARIANTS["no-net"])
    assert job.identity() == "top+Injectso@no-net"
    assert FleetJob(app="top").identity() == "top"


def test_job_guest_round_trips_through_spec_dict():
    spec = FleetSpec.from_dict({
        "jobs": [{"app": "top", "guest": "no-net"}]
    })
    clone = FleetSpec.from_dict(spec.to_dict())
    assert clone.jobs[0].guest_config().digest() == VARIANTS["no-net"].digest()


def test_job_accepts_guest_references_directly():
    assert FleetJob(app="top", guest="no-net").guest is VARIANTS["no-net"]
    assert FleetJob(app="top", guest={"vcpus": 2}).guest.vcpus == 2
    assert FleetJob(app="top").guest_config() is DEFAULT_GUEST_CONFIG


def test_uniform_spec_pins_every_job_to_the_guest():
    spec = uniform_spec(["top", "gzip"], guest="no-net", repeat=2)
    assert all(job.guest is VARIANTS["no-net"] for job in spec.jobs)
    assert len(spec.jobs) == 4
