"""Telemetry primitive unit tests: counters, histograms, ring, export."""

import json

import pytest

from repro.telemetry import (
    Counter,
    Histogram,
    LabelledCounter,
    Telemetry,
    TraceBuffer,
    TraceEvent,
    format_counters,
    format_timeline,
    snapshot,
    to_json,
)


class TestCounters:
    def test_counter_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_labelled_counter(self):
        c = LabelledCounter("per_addr")
        c.inc(0xC0100000)
        c.inc(0xC0100000)
        c.inc(0xC0200000, 3)
        assert c.get(0xC0100000) == 2
        assert c.get(0xDEAD) == 0
        assert c.total == 5
        assert c.values == {0xC0100000: 2, 0xC0200000: 3}

    def test_registry_get_or_create(self):
        tel = Telemetry()
        assert tel.counter("a") is tel.counter("a")
        assert tel.histogram("h") is tel.histogram("h")
        assert tel.labelled_counter("l") is tel.labelled_counter("l")
        tel.counter("a").inc()
        tel.reset()
        assert tel.counter("a").value == 0


class TestHistogram:
    def test_observe_stats(self):
        h = Histogram("cycles")
        for v in (0, 1, 2, 900, 900, 15000):
            h.observe(v)
        assert h.count == 6
        assert h.total == 16803
        assert h.min == 0
        assert h.max == 15000
        assert h.mean == pytest.approx(16803 / 6)

    def test_buckets_power_of_two(self):
        h = Histogram("x")
        h.observe(0)
        h.observe(1)
        h.observe(900)  # bit_length 10 -> bucket upper bound 1023
        bounds = dict(h.nonzero_buckets())
        assert bounds[0] == 1
        assert bounds[1] == 1
        assert bounds[1023] == 1

    def test_percentile(self):
        h = Histogram("x")
        for _ in range(99):
            h.observe(100)
        h.observe(10_000)
        assert h.percentile(0.5) == 127  # 100 falls in the 64..127 bucket
        assert h.percentile(1.0) == 16383

    def test_negative_clamped(self):
        h = Histogram("x")
        h.observe(-5)
        assert h.min == 0


class TestTraceBuffer:
    def test_bounded_with_drop_accounting(self):
        ring = TraceBuffer(capacity=4)
        for i in range(10):
            ring.append(TraceEvent(i, i, 0, "k"))
        assert len(ring) == 4
        assert ring.dropped == 6
        assert [e.seq for e in ring] == [6, 7, 8, 9]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)


class TestTracing:
    def test_repro_trace_env_enables_tracing(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert Telemetry().tracing is True
        monkeypatch.delenv("REPRO_TRACE")
        assert Telemetry().tracing is False

    def test_disabled_emits_nothing(self):
        tel = Telemetry()
        tel.emit("x", cycles=1, cpu=0, a=1)
        assert len(tel.trace) == 0

    def test_enabled_emits_sequenced_events(self):
        tel = Telemetry()
        tel.enable_tracing()
        tel.emit("a", cycles=5, cpu=0, rip=0x10)
        tel.emit("b", cycles=9, cpu=1)
        events = tel.events()
        assert [e.kind for e in events] == ["a", "b"]
        assert events[0].seq < events[1].seq
        assert events[0].get("rip") == 0x10
        assert tel.events("b")[0].cycles == 9

    def test_disable_stops_recording(self):
        tel = Telemetry()
        tel.enable_tracing()
        tel.emit("a")
        tel.disable_tracing()
        tel.emit("b")
        assert [e.kind for e in tel.events()] == ["a"]


class TestExport:
    def _populated(self):
        tel = Telemetry()
        tel.counter("hits").inc(3)
        tel.labelled_counter("per").inc("x", 2)
        tel.histogram("lat").observe(100)
        tel.enable_tracing()
        tel.emit("recovery", cycles=42, cpu=0, rip=0xC0100000)
        return tel

    def test_snapshot_roundtrips_through_json(self):
        tel = self._populated()
        data = json.loads(to_json(tel))
        assert data["counters"]["hits"] == 3
        assert data["labelled_counters"]["per"]["x"] == 2
        assert data["histograms"]["lat"]["count"] == 1
        assert data["trace"]["events"][0]["kind"] == "recovery"
        assert data["trace"]["events"][0]["cycles"] == 42

    def test_snapshot_without_events(self):
        tel = self._populated()
        assert "trace" not in snapshot(tel, events=False)

    def test_format_counters_skips_zeroes(self):
        tel = self._populated()
        tel.counter("silent")
        text = format_counters(tel)
        assert "hits" in text
        assert "silent" not in text

    def test_format_timeline_limit(self):
        events = [TraceEvent(i, i, 0, "k", {"n": i}) for i in range(10)]
        text = format_timeline(events, limit=3)
        assert "7 earlier events omitted" in text
        assert "n=9" in text
        assert "n=2" not in text

    def test_format_timeline_kind_filter(self):
        events = [
            TraceEvent(1, 1, 0, "keep"),
            TraceEvent(2, 2, 0, "drop"),
        ]
        text = format_timeline(events, kinds=["keep"])
        assert "keep" in text and "drop" not in text
