"""Flight-recorder journal: round-trips, drop accounting, verification."""

import json

import pytest

from repro.telemetry import (
    JOURNAL_SCHEMA,
    Journal,
    JournalError,
    load_journal,
    parse_journal,
)


def test_file_round_trip(tmp_path):
    path = tmp_path / "run.jsonl"
    journal = Journal(path=path, meta={"app": "top", "scale": 2})
    journal.append("span", id=1, parent=None, kind="vmexit")
    journal.append("event", kind="recovery", cycles=42, fields={"rip": 7})
    journal.close()
    data = load_journal(path)
    assert data.schema == JOURNAL_SCHEMA
    assert data.meta == {"app": "top", "scale": 2}
    assert data.complete and data.dropped == 0
    assert [r["t"] for r in data.records] == ["span", "event"]
    assert [r["seq"] for r in data.records] == [1, 2]
    # the payload may carry its own "kind" -- distinct from the record type
    assert data.records[1]["kind"] == "recovery"


def test_memory_journal_keeps_records_by_default():
    journal = Journal()
    journal.append("span", id=1)
    assert journal.keep
    assert [r["seq"] for r in journal.records()] == [1]


def test_file_journal_does_not_buffer_unless_asked(tmp_path):
    journal = Journal(path=tmp_path / "run.jsonl")
    journal.append("span", id=1)
    assert journal.records() == []
    kept = Journal(path=tmp_path / "kept.jsonl", keep=True)
    kept.append("span", id=1)
    assert len(kept.records()) == 1


def test_bounded_buffer_counts_every_eviction():
    journal = Journal(capacity=3)
    for i in range(10):
        journal.append("span", id=i)
    assert len(journal.records()) == 3
    assert journal.dropped == 7
    assert [r["id"] for r in journal.records()] == [7, 8, 9]
    assert journal.seq == 10


def test_drain_segment_transmits_without_counting_drops():
    journal = Journal(capacity=3)
    for i in range(4):
        journal.append("span", id=i)
    records, dropped = journal.drain_segment()
    assert [r["id"] for r in records] == [1, 2, 3]
    assert dropped == 1
    # drained records are transmitted, not lost; counter resets per segment
    journal.append("span", id=4)
    records, dropped = journal.drain_segment()
    assert [r["id"] for r in records] == [4]
    assert dropped == 0
    assert journal.dropped == 1  # lifetime total unchanged by draining


def test_append_after_close_is_a_noop(tmp_path):
    journal = Journal(path=tmp_path / "run.jsonl")
    journal.append("span", id=1)
    journal.close()
    assert journal.append("span", id=2) == 1
    assert load_journal(tmp_path / "run.jsonl").records[-1]["seq"] == 1


def _lines(*records):
    return [json.dumps(r) for r in records]


HEADER = {"t": "header", "schema": JOURNAL_SCHEMA, "meta": {}}


def test_parse_rejects_missing_header():
    with pytest.raises(JournalError, match="before header"):
        parse_journal(_lines({"t": "span", "seq": 1}))
    with pytest.raises(JournalError, match="no header"):
        parse_journal([])


def test_parse_rejects_wrong_schema():
    bad = {"t": "header", "schema": JOURNAL_SCHEMA + 1, "meta": {}}
    with pytest.raises(JournalError, match="unsupported journal schema"):
        parse_journal(_lines(bad))


def test_parse_rejects_seq_regression():
    with pytest.raises(JournalError, match="not increasing"):
        parse_journal(_lines(
            HEADER, {"t": "span", "seq": 2}, {"t": "span", "seq": 2}
        ))


def test_parse_rejects_unexplained_gaps():
    with pytest.raises(JournalError, match="missing"):
        parse_journal(_lines(
            HEADER,
            {"t": "span", "seq": 1},
            {"t": "span", "seq": 5},
            {"t": "footer", "records": 5, "dropped": 1},
        ))


def test_parse_accepts_gaps_the_writer_accounted_for():
    data = parse_journal(_lines(
        HEADER,
        {"t": "span", "seq": 1},
        {"t": "span", "seq": 5},
        {"t": "footer", "records": 5, "dropped": 3},
    ))
    assert data.dropped == 3
    assert data.complete


def test_parse_rejects_footer_understating_records():
    with pytest.raises(JournalError, match="footer declares"):
        parse_journal(_lines(
            HEADER,
            {"t": "span", "seq": 1},
            {"t": "span", "seq": 2},
            {"t": "footer", "records": 1, "dropped": 0},
        ))


def test_parse_rejects_garbage_and_non_records():
    with pytest.raises(JournalError, match="invalid JSON"):
        parse_journal(["not json"])
    with pytest.raises(JournalError, match="not a journal record"):
        parse_journal(_lines({"no_t": 1}))


def test_journal_without_footer_is_valid_but_incomplete():
    data = parse_journal(_lines(HEADER, {"t": "span", "seq": 1}))
    assert not data.complete
    assert data.dropped == 0
    # ...and must then be gapless
    with pytest.raises(JournalError, match="missing"):
        parse_journal(_lines(HEADER, {"t": "span", "seq": 3}))


def test_deepcopy_detaches_from_the_file(tmp_path):
    import copy

    journal = Journal(path=tmp_path / "run.jsonl", capacity=8, keep=False)
    journal.append("span", id=1)
    clone = copy.deepcopy(journal)
    assert clone.path is None and clone.capacity == 8
    clone.append("span", id=99)
    journal.close()
    # the fork's writes never reached the parent's file
    seqs = [r["seq"] for r in load_journal(tmp_path / "run.jsonl").records]
    assert seqs == [1]
