"""Hypervisor exit-dispatch unit tests."""

import pytest

from repro.hypervisor.kvm import GuestCrash, Hypervisor, VMEXIT_COST_CYCLES
from repro.hypervisor.vcpu import SemanticsBridge, Vcpu
from repro.memory.ept import ExtendedPageTable
from repro.memory.mmu import Mmu
from repro.memory.paging import GuestPageTable
from repro.memory.physmem import PhysicalMemory

CODE = 0x00010000
#: park: hlt; jmp back to the hlt (keeps idle exits flowing until budget)
PARK = b"\xf4\xe9\xfa\xff\xff\xff"


class IdleBridge(SemanticsBridge):
    def interrupt_pending(self, vcpu):
        return False


@pytest.fixture()
def setup():
    physmem = PhysicalMemory()
    hv = Hypervisor(physmem)
    ept = ExtendedPageTable()
    pt = GuestPageTable()
    pt.map_page(CODE, CODE)
    pt.map_page(0x00020000, 0x00020000)
    mmu = Mmu(physmem, ept)
    mmu.set_cr3(pt)
    vcpu = Vcpu(0, mmu, IdleBridge())
    vcpu.eip = CODE
    vcpu.esp = 0x00020FF0
    hv.attach_vcpu(vcpu, ept)
    return physmem, hv, vcpu


def test_address_trap_dispatch(setup):
    physmem, hv, vcpu = setup
    physmem.write(CODE, b"\x90" + PARK)
    seen = []
    hv.register_address_trap(CODE, lambda v, e: seen.append(e.rip))
    hv.set_idle_handler(lambda v: None)
    hv.run(vcpu, budget=50)
    assert seen == [CODE]
    assert hv.stats.address_traps == 1
    assert hv.stats.per_trap_address[CODE] == 1


def test_unhandled_trap_crashes(setup):
    physmem, hv, vcpu = setup
    physmem.write(CODE, b"\x90" + PARK)
    vcpu.arm_trap(CODE)  # armed on the vcpu but not registered with hv
    with pytest.raises(GuestCrash):
        hv.run(vcpu, budget=50)


def test_invalid_opcode_handler_recovers(setup):
    physmem, hv, vcpu = setup
    physmem.write(CODE, b"\x0f\x0b")

    def fix(v, e):
        physmem.write(CODE, b"\x90" + PARK)
        return True

    hv.set_invalid_opcode_handler(fix)
    hv.set_idle_handler(lambda v: None)
    hv.run(vcpu, budget=50)
    assert hv.stats.invalid_opcode_traps == 1


def test_invalid_opcode_unhandled_crashes(setup):
    physmem, hv, vcpu = setup
    physmem.write(CODE, b"\x0f\x0b")
    with pytest.raises(GuestCrash):
        hv.run(vcpu, budget=50)


def test_declined_recovery_crashes(setup):
    physmem, hv, vcpu = setup
    physmem.write(CODE, b"\x0f\x0b")
    hv.set_invalid_opcode_handler(lambda v, e: False)
    with pytest.raises(GuestCrash):
        hv.run(vcpu, budget=50)


def test_hlt_without_idle_handler_crashes(setup):
    physmem, hv, vcpu = setup
    physmem.write(CODE, b"\xf4")
    with pytest.raises(GuestCrash):
        hv.run(vcpu, budget=50)


def test_exit_charges_cycles(setup):
    physmem, hv, vcpu = setup
    physmem.write(CODE, PARK)
    ticks = []
    hv.set_idle_handler(lambda v: ticks.append(v.cycles))
    hv.run(vcpu, budget=2)
    assert hv.overhead_cycles >= VMEXIT_COST_CYCLES
    assert vcpu.cycles >= VMEXIT_COST_CYCLES


def test_unregister_trap(setup):
    physmem, hv, vcpu = setup
    physmem.write(CODE, b"\x90" + PARK)
    hv.register_address_trap(CODE, lambda v, e: None)
    hv.unregister_address_trap(CODE)
    hv.set_idle_handler(lambda v: None)
    hv.run(vcpu, budget=20)
    assert hv.stats.address_traps == 0


def test_budget_returns_without_crash(setup):
    physmem, hv, vcpu = setup
    physmem.write(CODE, b"\xe9\xfb\xff\xff\xff")  # spin
    hv.run(vcpu, budget=100)  # returns on budget
