"""Exit-code hygiene for ``repro ctl`` (the PR 3 convention).

Client-side failures -- daemon unreachable, unknown job id, rejected
submission -- must return non-zero with an ``error:`` line on stderr;
a daemon-reported failed job returns 1.  The daemon behind these tests
uses a fake executor, so they stay fast.
"""

import threading
import time

import pytest

from repro.cli import main
from repro.fleet import ProfileLibrary
from repro.fleet.jobs import JobResult
from repro.serve import ServeDaemon


@pytest.fixture()
def live_daemon(tmp_path):
    def executor(qjob):
        time.sleep(0.01)
        ok = qjob.job.app != "gzip"  # gzip jobs "fail" for the exit-1 case
        return JobResult(
            name=qjob.job.name, app=qjob.job.app, ok=ok,
            cycles=1000, syscalls=5, job_cycles=1000,
            error="" if ok else "workload crashed",
        )

    sock = str(tmp_path / "serve.sock")
    daemon = ServeDaemon(
        ProfileLibrary(str(tmp_path / "lib")),
        socket_path=sock,
        auto_profile=True,
        executor=executor,
        max_queue_depth=64,
        warm_target=0,
    )
    daemon.start()
    yield sock
    daemon.shutdown(timeout=10.0)


def test_ctl_unreachable_daemon_exits_2(tmp_path, capsys):
    code = main(["ctl", "--socket", str(tmp_path / "nope.sock"), "ping"])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "no serve daemon reachable" in err


def test_ctl_unknown_job_id_exits_2(live_daemon, capsys):
    code = main(["ctl", "--socket", live_daemon, "result", "job-9999"])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "unknown job id" in err


def test_ctl_rejected_submission_exits_2(live_daemon, capsys):
    code = main(["ctl", "--socket", live_daemon, "submit", "nosuchapp"])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "unknown application" in err


def test_ctl_submit_wait_success_exits_0(live_daemon, capsys):
    code = main([
        "ctl", "--socket", live_daemon,
        "submit", "top", "--wait", "--timeout", "30",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "submitted job-0001 (top#0)" in out
    assert "done" in out


def test_ctl_failed_job_result_exits_1(live_daemon, capsys):
    code = main([
        "ctl", "--socket", live_daemon,
        "submit", "gzip", "--wait", "--timeout", "30",
    ])
    assert code == 1
    captured = capsys.readouterr()
    assert "error:" in captured.err
    assert "workload crashed" in captured.err


def test_ctl_status_and_cancel_flow(live_daemon, capsys):
    assert main(
        ["ctl", "--socket", live_daemon, "submit", "top"]
    ) == 0
    assert main(["ctl", "--socket", live_daemon, "status"]) == 0
    out = capsys.readouterr().out
    assert "job-0001" in out and "top#0" in out
    # already-terminal cancel surfaces as a client error (exit 2)
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        main(["ctl", "--socket", live_daemon, "status", "job-0001"])
        if "state            done" in capsys.readouterr().out:
            break
        time.sleep(0.02)
    code = main(["ctl", "--socket", live_daemon, "cancel", "job-0001"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_ctl_stats_table_default_and_json(live_daemon, capsys):
    assert main([
        "ctl", "--socket", live_daemon,
        "submit", "top", "--wait", "--timeout", "30",
    ]) == 0
    capsys.readouterr()
    assert main(["ctl", "--socket", live_daemon, "stats"]) == 0
    out = capsys.readouterr().out
    # the human table leads with daemon/queue/workers rows
    assert out.startswith("daemon")
    assert "queue      depth 0/64" in out
    assert "workers    alive" in out
    assert "done=1" in out
    assert "default" in out  # tenant row
    # --json keeps the raw dump (scripting interface unchanged)
    assert main(["ctl", "--socket", live_daemon, "stats", "--json"]) == 0
    parsed = __import__("json").loads(capsys.readouterr().out)
    assert parsed["queue"]["max_depth"] == 64


def test_ctl_metrics_json_prom_series(live_daemon, capsys):
    import json as json_mod

    assert main([
        "ctl", "--socket", live_daemon,
        "submit", "top", "--wait", "--timeout", "30",
    ]) == 0
    capsys.readouterr()
    assert main(["ctl", "--socket", live_daemon, "metrics"]) == 0
    described = json_mod.loads(capsys.readouterr().out)
    assert described["samples"] >= 0 and "queue" in described

    assert main(["ctl", "--socket", live_daemon, "metrics", "--prom"]) == 0
    prom = capsys.readouterr().out
    assert "repro_serve_alert_state" in prom

    assert main(["ctl", "--socket", live_daemon, "metrics", "--series"]) == 0
    series = json_mod.loads(capsys.readouterr().out)
    assert "series" in series


def test_ctl_top_once_renders_frame(live_daemon, capsys):
    assert main(["ctl", "--socket", live_daemon, "top", "--once"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("repro serve  pid")
    assert "queue" in out and "alerts" in out
    assert "\x1b[2J" not in out  # --once never clears the screen


def test_ctl_shutdown_drains(tmp_path, capsys):
    def executor(qjob):
        time.sleep(0.01)
        return JobResult(
            name=qjob.job.name, app=qjob.job.app, ok=True,
            cycles=1, syscalls=1, job_cycles=1,
        )

    sock = str(tmp_path / "serve.sock")
    daemon = ServeDaemon(
        ProfileLibrary(str(tmp_path / "lib")),
        socket_path=sock,
        auto_profile=True,
        executor=executor,
        warm_target=0,
    )
    daemon.start()
    shutdown_done = threading.Event()
    try:
        for _ in range(3):
            assert main(["ctl", "--socket", sock, "submit", "top"]) == 0
        assert main(["ctl", "--socket", sock, "shutdown"]) == 0
        shutdown_done.set()
        out = capsys.readouterr().out
        assert "drained" in out and "done=3" in out
        # and now the daemon is gone: unreachable is exit 2
        assert main(["ctl", "--socket", sock, "ping"]) == 2
    finally:
        if not shutdown_done.is_set():
            daemon.shutdown(timeout=10.0)
