"""View library and hidden-code scanner tests."""

import pytest

from repro.core.facechange import FaceChange
from repro.core.kernel_view import KernelViewConfig
from repro.core.library import ViewLibrary
from repro.core.rangelist import BASE_KERNEL, KernelProfile
from repro.core.scanner import HiddenCodeScanner
from repro.guest.machine import boot_machine
from repro.kernel.runtime import Platform
from repro.malware.rootkits import KBEAST_SPEC, SEBEK_SPEC


def make_config(app, size=256):
    profile = KernelProfile()
    profile.add(BASE_KERNEL, 0xC0100000, 0xC0100000 + size)
    return KernelViewConfig(app=app, profile=profile)


class TestViewLibrary:
    def test_save_load_roundtrip(self, tmp_path):
        lib = ViewLibrary(tmp_path / "views")
        config = make_config("apache")
        path = lib.save(config)
        assert path.exists()
        back = lib.load("apache")
        assert back.app == "apache"
        assert back.size == config.size

    def test_apps_listing_and_contains(self, tmp_path):
        lib = ViewLibrary(tmp_path)
        lib.save(make_config("top"))
        lib.save(make_config("bash"))
        assert lib.apps() == ["bash", "top"]
        assert "top" in lib
        assert "gzip" not in lib
        assert len(lib) == 2

    def test_remove(self, tmp_path):
        lib = ViewLibrary(tmp_path)
        lib.save(make_config("top"))
        assert lib.remove("top")
        assert not lib.remove("top")
        assert len(lib) == 0

    def test_missing_app_raises(self, tmp_path):
        with pytest.raises(KeyError):
            ViewLibrary(tmp_path).load("nothing")

    def test_union_over_library(self, tmp_path):
        lib = ViewLibrary(tmp_path)
        lib.save(make_config("a", size=100))
        b = KernelProfile()
        b.add(BASE_KERNEL, 0xC0100050, 0xC0100150)
        lib.save(KernelViewConfig(app="b", profile=b))
        union = lib.union()
        assert union.size == 0x150

    def test_load_into_running_facechange(self, tmp_path, app_configs):
        lib = ViewLibrary(tmp_path)
        lib.save_all({k: app_configs[k] for k in ("top", "gzip")})
        machine = boot_machine(platform=Platform.KVM)
        fc = FaceChange(machine)
        fc.enable()
        indices = lib.load_into(fc)
        assert set(indices) == {"top", "gzip"}
        assert fc.stats.loaded_views == 2


class TestHiddenCodeScanner:
    def test_clean_guest_has_no_hidden_code(self, machine):
        scanner = HiddenCodeScanner(machine)
        assert scanner.scan() == []
        assert "no hidden" in scanner.report()

    def test_visible_module_not_flagged(self, machine):
        # load sebek but do NOT hide it: still visible via VMI
        machine.image.load_module("sebek", SEBEK_SPEC.functions)
        scanner = HiddenCodeScanner(machine)
        assert scanner.scan() == []

    def test_hidden_module_detected(self, machine):
        machine.image.load_module("kbeast", KBEAST_SPEC.functions)
        machine.image.hide_module("kbeast")
        scanner = HiddenCodeScanner(machine)
        regions = scanner.scan()
        assert len(regions) == 1
        region = regions[0]
        module = machine.image.modules["kbeast"]
        assert region.start == module.base
        assert region.functions == len(KBEAST_SPEC.functions)
        assert "hidden code" in scanner.report()

    def test_rehidden_module_region_bounds(self, machine):
        machine.image.load_module("kbeast", KBEAST_SPEC.functions)
        machine.image.hide_module("kbeast")
        module = machine.image.modules["kbeast"]
        region = HiddenCodeScanner(machine).scan()[0]
        assert module.base <= region.start < region.end
        assert region.end <= module.base + module.size + 4096
