"""Software MMU unit tests: two-stage translation and cache coherence."""

import pytest

from repro.memory.ept import ExtendedPageTable
from repro.memory.mmu import Mmu, TranslationError
from repro.memory.paging import GuestPageTable
from repro.memory.physmem import PhysicalMemory


@pytest.fixture()
def world():
    physmem = PhysicalMemory()
    ept = ExtendedPageTable()
    pt = GuestPageTable()
    pt.map_page(0x1000, 0x5000)
    pt.map_page(0x2000, 0x6000)
    mmu = Mmu(physmem, ept)
    mmu.set_cr3(pt)
    return physmem, ept, pt, mmu


def test_two_stage_translation(world):
    physmem, ept, pt, mmu = world
    assert mmu.translate(0x1010) == 0x5010
    ept.map_frame(0x5, 0x99)
    assert mmu.translate(0x1010) == 0x99010


def test_read_write_through(world):
    physmem, ept, pt, mmu = world
    mmu.write(0x1FF0, b"0123456789abcdef" * 2)  # crosses into 0x2000 page
    assert mmu.read(0x1FF0, 32) == b"0123456789abcdef" * 2
    assert physmem.read(0x5FF0, 16) == b"0123456789abcdef"
    assert physmem.read(0x6000, 16) == b"0123456789abcdef"


def test_u32_helpers(world):
    _, _, _, mmu = world
    mmu.write_u32(0x1004, 0xDEADBEEF)
    assert mmu.read_u32(0x1004) == 0xDEADBEEF


def test_unmapped_raises_translation_error(world):
    _, _, _, mmu = world
    with pytest.raises(TranslationError):
        mmu.read(0xF0000000, 1)


def test_cache_invalidated_on_pt_change(world):
    _, _, pt, mmu = world
    assert mmu.translate(0x1000) == 0x5000
    pt.map_page(0x1000, 0x7000)
    assert mmu.translate(0x1000) == 0x7000


def test_cache_invalidated_on_ept_change(world):
    _, ept, _, mmu = world
    assert mmu.translate(0x2000) == 0x6000
    ept.map_frame(0x6, 0x42)
    assert mmu.translate(0x2000) == 0x42000


def test_cr3_switch_changes_address_space(world):
    physmem, ept, pt, mmu = world
    other = GuestPageTable()
    other.map_page(0x1000, 0x8000)
    mmu.set_cr3(other)
    assert mmu.translate(0x1000) == 0x8000
    mmu.set_cr3(pt)
    assert mmu.translate(0x1000) == 0x5000


def test_write_bumps_frame_version(world):
    physmem, _, _, mmu = world
    v0 = physmem.version(0x5)
    mmu.write(0x1000, b"zz")
    assert physmem.version(0x5) > v0
