"""Alert webhook delivery discipline (repro.serve.webhook).

The sink must never block the daemon: offers are non-blocking, delivery
retries are bounded, and terminal failures only increment
``serve.alerts.webhook_errors``.
"""

import http.server
import json
import threading
import time

from repro.serve.webhook import AlertWebhook
from repro.telemetry import Telemetry


class _Receiver(http.server.BaseHTTPRequestHandler):
    payloads = []
    fail_first = 0

    def do_POST(self):
        body = self.rfile.read(int(self.headers["Content-Length"]))
        if _Receiver.fail_first > 0:
            _Receiver.fail_first -= 1
            self.send_response(500)
            self.end_headers()
            return
        _Receiver.payloads.append(json.loads(body))
        self.send_response(200)
        self.end_headers()

    def log_message(self, *args):
        pass


def _serve():
    server = http.server.HTTPServer(("127.0.0.1", 0), _Receiver)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, f"http://127.0.0.1:{server.server_port}/alerts"


def _wait(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def test_delivers_alert_payloads_as_json():
    _Receiver.payloads = []
    server, url = _serve()
    try:
        hook = AlertWebhook(url)
        hook.start()
        payload = {
            "type": "alert", "rule": "queue_saturated", "label": "",
            "state": "firing", "value": 0.95, "threshold": 0.9,
            "at": 1.0, "description": "hot",
        }
        assert hook.offer(payload) is True
        assert _wait(lambda: len(_Receiver.payloads) == 1)
        assert _Receiver.payloads[0] == payload
        assert hook.delivered == 1 and hook.errors == 0
        hook.stop()
    finally:
        server.shutdown()


def test_retries_through_transient_failures():
    _Receiver.payloads = []
    _Receiver.fail_first = 2
    server, url = _serve()
    try:
        hook = AlertWebhook(url, retries=3, backoff=0.01)
        hook.start()
        hook.offer({"type": "alert", "rule": "r", "state": "firing"})
        assert _wait(lambda: len(_Receiver.payloads) == 1)
        assert hook.errors == 0
        hook.stop()
    finally:
        _Receiver.fail_first = 0
        server.shutdown()


def test_terminal_failure_counts_webhook_errors():
    telemetry = Telemetry()
    # nothing listens on this port: every attempt fails fast
    hook = AlertWebhook(
        "http://127.0.0.1:1/alerts",
        telemetry=telemetry,
        retries=2,
        backoff=0.01,
        timeout=0.2,
    )
    hook.start()
    hook.offer({"type": "alert", "rule": "r", "state": "firing"})
    assert _wait(lambda: hook.errors == 1)
    assert telemetry.counter("serve.alerts.webhook_errors").value == 1
    hook.stop()


def test_offer_overflow_is_counted_not_blocking():
    telemetry = Telemetry()
    hook = AlertWebhook(
        "http://127.0.0.1:1/alerts", telemetry=telemetry, maxsize=2
    )
    # never started: the queue only fills
    assert hook.offer({"n": 1}) is True
    assert hook.offer({"n": 2}) is True
    assert hook.offer({"n": 3}) is False
    assert hook.errors == 1
    assert telemetry.counter("serve.alerts.webhook_errors").value == 1


def test_stop_is_bounded_even_with_dead_receiver():
    hook = AlertWebhook(
        "http://127.0.0.1:1/alerts", retries=2, backoff=0.05, timeout=0.2
    )
    hook.start()
    for n in range(5):
        hook.offer({"n": n})
    started = time.monotonic()
    hook.stop(timeout=3.0)
    assert time.monotonic() - started < 10.0
