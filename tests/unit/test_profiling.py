"""Unit tests: flame rendering, sample profiles, the vCPU sampler hook,
and probe/trap-chain composition at the hypervisor level."""

from repro.hypervisor.kvm import Hypervisor, VMEXIT_COST_CYCLES
from repro.hypervisor.vcpu import SemanticsBridge, Vcpu
from repro.memory.ept import ExtendedPageTable
from repro.memory.mmu import Mmu
from repro.memory.paging import GuestPageTable
from repro.memory.physmem import PhysicalMemory
from repro.obs.profiling import (
    SampleProfile,
    decode_folded,
    encode_folded,
    render_flame,
    top_table,
)

CODE = 0x00010000
#: park: hlt; jmp back to the hlt (keeps idle exits flowing until budget)
PARK = b"\xf4\xe9\xfa\xff\xff\xff"


class IdleBridge(SemanticsBridge):
    def interrupt_pending(self, vcpu):
        return False


def make_world(vcpu_count=1):
    physmem = PhysicalMemory()
    hv = Hypervisor(physmem)
    pt = GuestPageTable()
    pt.map_page(CODE, CODE)
    pt.map_page(0x00020000, 0x00020000)
    vcpus = []
    for cpu_id in range(vcpu_count):
        ept = ExtendedPageTable()
        mmu = Mmu(physmem, ept)
        mmu.set_cr3(pt)
        vcpu = Vcpu(cpu_id, mmu, IdleBridge())
        vcpu.eip = CODE
        vcpu.esp = 0x00020FF0 - cpu_id * 64
        hv.attach_vcpu(vcpu, ept)
        vcpus.append(vcpu)
    return physmem, hv, vcpus


class TestFlameRendering:
    def test_decode_handles_escaped_separators(self):
        assert decode_folded("a\\;b;c\\\\d") == ["a;b", "c\\d"]
        assert decode_folded("") == []
        assert encode_folded(["a;b", "c\\d"]) == "a\\;b;c\\\\d"

    def test_render_is_deterministic_and_ordered(self):
        stacks = {"main;read": 3, "main;write": 1, "idle": 2}
        text = render_flame(stacks)
        assert text == render_flame(dict(reversed(list(stacks.items()))))
        lines = text.splitlines()
        assert lines[0] == "all [6 samples]"
        # siblings ordered by count: main(4) before idle(2),
        # read(3) before write(1)
        assert lines.index("  main [4 | 66.7%] ###########################") \
            < lines.index("  idle [2 | 33.3%] #############")
        assert text.index("read") < text.index("write")

    def test_render_empty_profile(self):
        assert render_flame({}) == "(no samples)"

    def test_top_table_ranks_by_count(self):
        text = top_table(
            [("cold_fn", "base kernel", 1), ("hot_fn", "ext4", 9)], limit=5
        )
        lines = text.splitlines()
        assert "hot_fn" in lines[1]
        assert "cold_fn" in lines[2]


class TestSampleProfile:
    def test_folded_filters_by_comm_and_view(self):
        profile = SampleProfile()
        profile.add_sample("top", 0, 0, ["a", "b"])
        profile.add_sample("top", 1, 0, ["a", "b"])
        profile.add_sample("gzip", 0, 1, ["c"])
        assert profile.folded() == {"a;b": 2, "c": 1}
        assert profile.folded(comm="top") == {"a;b": 2}
        assert profile.folded(comm="top", view=1) == {"a;b": 1}
        assert profile.comms() == ["gzip", "top"]

    def test_snapshot_round_trip(self):
        profile = SampleProfile()
        profile.add_sample(
            "top", 0, 0, ["a"], function_key="top\tbase kernel\t0\t16\ta"
        )
        snapshot = {
            "counters": {"profile.samples": profile.samples},
            "labelled_counters": {
                "profile.stacks": dict(profile.stacks),
                "profile.functions": dict(profile.functions),
            },
        }
        restored = SampleProfile.from_snapshot(snapshot)
        assert restored.samples == profile.samples
        assert restored.stacks == profile.stacks
        assert restored.functions == profile.functions

    def test_function_rows_aggregate_across_comms(self):
        profile = SampleProfile()
        key_a = "top\tbase kernel\t0\t16\tfn"
        key_b = "gzip\tbase kernel\t0\t16\tfn"
        profile.add_sample("top", 0, 0, ["fn"], function_key=key_a)
        profile.add_sample("gzip", 0, 0, ["fn"], function_key=key_b)
        rows = profile.function_rows()
        assert rows == [("fn", "base kernel", 2, 0, 16)]
        assert profile.function_rows(comm="top") == [
            ("fn", "base kernel", 1, 0, 16)
        ]


class TestVcpuSamplerHook:
    def test_sampler_fires_on_cycle_grid(self):
        physmem, hv, (vcpu,) = make_world()
        physmem.write(CODE, b"\x90" * 10 + PARK)
        hv.set_idle_handler(lambda v: None)
        seen = []

        def sampler(v):
            seen.append(v.cycles)
            return ((v.cycles // 50) + 1) * 50

        vcpu.cycle_sampler = sampler
        hv.run(vcpu, budget=300)
        assert seen, "sampler never fired"
        # strictly increasing observation points, one per crossing
        assert seen == sorted(set(seen))

    def test_sampler_does_not_change_virtual_cycles(self):
        runs = []
        for install in (False, True):
            physmem, hv, (vcpu,) = make_world()
            physmem.write(CODE, b"\x90" * 10 + PARK)
            hv.set_idle_handler(lambda v: None)
            if install:
                vcpu.cycle_sampler = lambda v: v.cycles + 25
            hv.run(vcpu, budget=500)
            runs.append((vcpu.cycles, vcpu.instructions))
        assert runs[0] == runs[1]


class TestObserverTrapChains:
    """Probe-style observer entries composing with ordinary consumers."""

    def test_observer_only_trap_charges_zero_exit_cycles(self):
        physmem, hv, (vcpu,) = make_world()
        physmem.write(CODE, b"\x90" + PARK)
        hits = []
        hv.register_address_trap(
            CODE, lambda v, e: hits.append(v.cycles), observer=True
        )
        hv.set_idle_handler(lambda v: None)
        hv.run(vcpu, budget=40)
        assert hits
        hist = hv.telemetry.histogram("hv.exit_cycles.address_trap")
        assert hist.count == 1
        assert hist.max == 0  # observers are free

    def test_mixed_consumers_still_charge_the_world_switch(self):
        physmem, hv, (vcpu,) = make_world()
        physmem.write(CODE, b"\x90" + PARK)
        hv.register_address_trap(CODE, lambda v, e: None, observer=True)
        hv.register_address_trap(CODE, lambda v, e: None)
        hv.set_idle_handler(lambda v: None)
        hv.run(vcpu, budget=40)
        hist = hv.telemetry.histogram("hv.exit_cycles.address_trap")
        assert hist.min >= VMEXIT_COST_CYCLES

    def test_probe_and_per_vcpu_trap_survive_either_removal_order(self):
        """The PR 1 fix area: a global observer (probe) and a per-vCPU
        consumer (FACE-CHANGE resume trap) share an address."""
        for remove_probe_first in (True, False):
            physmem, hv, (v0, v1) = make_world(vcpu_count=2)
            physmem.write(CODE, b"\x90" + PARK)
            seen = []

            def probe(v, e):
                seen.append(("probe", v.cpu_id))

            def resume(v, e):
                seen.append(("resume", v.cpu_id))

            hv.register_address_trap(CODE, probe, observer=True)
            hv.register_address_trap(CODE, resume, vcpu=v1)
            if remove_probe_first:
                hv.unregister_address_trap(CODE, handler=probe)
                assert CODE in v1.trap_addresses  # resume still armed
                hv.set_idle_handler(lambda v: None)
                hv.run(v1, budget=30)
                assert ("resume", 1) in seen
                assert not any(kind == "probe" for kind, _ in seen)
                hv.unregister_address_trap(CODE, vcpu=v1, handler=resume)
            else:
                hv.unregister_address_trap(CODE, vcpu=v1, handler=resume)
                assert CODE in v0.trap_addresses  # probe is global
                assert CODE in v1.trap_addresses
                hv.set_idle_handler(lambda v: None)
                hv.run(v0, budget=30)
                assert ("probe", 0) in seen
                assert not any(kind == "resume" for kind, _ in seen)
                hv.unregister_address_trap(CODE, handler=probe)
            assert not hv.trap_consumers(CODE)
            assert CODE not in v0.trap_addresses
            assert CODE not in v1.trap_addresses

    def test_both_consumers_fire_in_registration_order(self):
        physmem, hv, (vcpu,) = make_world()
        physmem.write(CODE, b"\x90" + PARK)
        order = []
        hv.register_address_trap(
            CODE, lambda v, e: order.append("probe"), observer=True
        )
        hv.register_address_trap(CODE, lambda v, e: order.append("switch"))
        hv.set_idle_handler(lambda v: None)
        hv.run(vcpu, budget=40)
        assert order == ["probe", "switch"]
