"""Unit tests for the benchmark harness building blocks."""

import pytest

from repro.bench.unixbench import (
    RESIDENT_APPS,
    UNIXBENCH_SUBTESTS,
    UnixBenchResult,
    _run_subtest,
)
from repro.bench.httperf import HttperfPoint
from repro.guest.machine import boot_machine
from repro.kernel.runtime import Platform


def test_subtest_roster_matches_unixbench():
    names = [name for name, _, _ in UNIXBENCH_SUBTESTS]
    assert "Dhrystone 2" in names
    assert "Pipe-based Context Switching" in names
    assert "System Call Overhead" in names
    assert len(names) == len(set(names)) == 11


def test_resident_apps_exclude_gzip():
    """Paper footnote 5: gzip is not long-running enough to stay resident."""
    assert "gzip" not in RESIDENT_APPS
    assert len(RESIDENT_APPS) == 11


@pytest.mark.parametrize(
    "name,driver,iters",
    [(n, d, i) for n, d, i in UNIXBENCH_SUBTESTS],
    ids=[n for n, _, _ in UNIXBENCH_SUBTESTS],
)
def test_each_subtest_completes(name, driver, iters):
    machine = boot_machine(platform=Platform.KVM)
    score = _run_subtest(machine, driver, max(1, iters // 10), rounds=1)
    assert score > 0


def test_normalization_math():
    base = UnixBenchResult(label="base", views_loaded=0,
                           scores={"a": 10.0, "b": 20.0})
    run = UnixBenchResult(label="x", views_loaded=1,
                          scores={"a": 9.0, "b": 20.0})
    normalized = run.normalized(base)
    assert normalized["a"] == pytest.approx(0.9)
    assert normalized["b"] == pytest.approx(1.0)
    assert run.normalized_index(base) == pytest.approx((0.9 * 1.0) ** 0.5)
    assert base.index == pytest.approx((10.0 * 20.0) ** 0.5)


def test_httperf_point_ratio():
    point = HttperfPoint(rate=30, baseline_throughput=30.0,
                         facechange_throughput=28.5)
    assert point.ratio == pytest.approx(0.95)
    zero = HttperfPoint(rate=5, baseline_throughput=0.0,
                        facechange_throughput=1.0)
    assert zero.ratio == 0.0
