"""Additional edge cases for the hidden-code scanner and symbolization."""

from repro.core.scanner import HiddenCodeScanner
from repro.malware.rootkits import ADORE_SPEC, KBEAST_SPEC


def test_two_hidden_modules_all_code_attributed(machine):
    """Two adjacent hidden modules: the scanner reports all their code
    (adjacent pages may coalesce into one region -- the scanner groups by
    contiguity, since ownership is exactly what hiding destroyed)."""
    machine.image.load_module("kbeast", KBEAST_SPEC.functions)
    machine.image.load_module("adore-ng", ADORE_SPEC.functions)
    machine.image.hide_module("kbeast")
    machine.image.hide_module("adore-ng")
    regions = HiddenCodeScanner(machine).scan()
    assert regions
    covered = lambda addr: any(r.start <= addr < r.end for r in regions)
    assert covered(machine.image.modules["kbeast"].base)
    assert covered(machine.image.modules["adore-ng"].base)
    total = sum(r.functions for r in regions)
    assert total == len(KBEAST_SPEC.functions) + len(ADORE_SPEC.functions)


def test_unhide_like_state_after_visible_reload(machine):
    """Hiding then 'reappearing' (rewriting the list) clears the finding."""
    machine.image.load_module("kbeast", KBEAST_SPEC.functions)
    machine.image.hide_module("kbeast")
    assert HiddenCodeScanner(machine).scan()
    machine.image.modules["kbeast"].hidden = False
    machine.image._rewrite_module_list()
    assert HiddenCodeScanner(machine).scan() == []


def test_scan_span_bounds_work(machine):
    machine.image.load_module("kbeast", KBEAST_SPEC.functions)
    machine.image.hide_module("kbeast")
    base = machine.image.modules["kbeast"].base
    # a span too small to reach the hidden module finds nothing
    from repro.memory.layout import MODULE_SPACE_BASE

    short = base - MODULE_SPACE_BASE - 0x1000
    assert HiddenCodeScanner(machine).scan(span=max(0x1000, short)) == []


def test_region_str_and_size(machine):
    machine.image.load_module("kbeast", KBEAST_SPEC.functions)
    machine.image.hide_module("kbeast")
    region = HiddenCodeScanner(machine).scan()[0]
    assert region.size == region.end - region.start
    text = str(region)
    assert "hidden code" in text and "functions" in text
