"""Kernel runtime internals: driver protocol, compute chunking, per-CPU."""

import pytest

from repro.guest.machine import boot_machine
from repro.kernel.objects import Compute, Syscall, TaskState
from repro.kernel.runtime import TIMER_PERIOD_CYCLES, Platform

Sys = Syscall


def test_driver_receives_return_values(machine):
    seen = []

    def app():
        fd = yield Sys("open", path="/a")
        seen.append(fd)
        n = yield Sys("read", fd=fd, count=77)
        seen.append(n)

    task = machine.spawn("t", app)
    machine.run(until=lambda: task.finished, max_cycles=8_000_000_000)
    assert seen == [3, 77]


def test_compute_advances_virtual_time(machine):
    def app():
        yield Compute(1_234_567)

    task = machine.spawn("t", app)
    start = machine.cycles
    machine.run(until=lambda: task.finished, max_cycles=80_000_000_000)
    assert machine.cycles - start >= 1_234_567


def test_compute_does_not_starve_timer(machine):
    """Ticks land inside a long compute burst (chunked consumption)."""
    def app():
        yield Compute(TIMER_PERIOD_CYCLES * 5)

    ticks_before = machine.runtime.timer_interrupts
    task = machine.spawn("t", app)
    machine.run(until=lambda: task.finished, max_cycles=80_000_000_000)
    assert machine.runtime.timer_interrupts - ticks_before >= 4


def test_driver_exhaustion_becomes_exit(machine):
    def app():
        yield Sys("getpid")

    task = machine.spawn("t", app)
    machine.run(until=lambda: task.finished, max_cycles=8_000_000_000)
    assert task.state is TaskState.ZOMBIE
    assert task.finished
    assert task.fd_table == {}  # exit closed everything


def test_signal_handler_driver_stack(machine):
    order = []

    def handler():
        order.append("handler")
        yield Sys("getpid")

    def app():
        yield Sys("rt_sigaction", signum=14, handler=handler)
        yield Sys("alarm", delay=100_000)
        while "handler" not in order:
            yield Compute(150_000)
        order.append("main")
        yield Sys("getpid")

    task = machine.spawn("t", app)
    machine.run(until=lambda: task.finished, max_cycles=80_000_000_000)
    assert order == ["handler", "main"]
    assert len(task.drivers) == 1  # handler driver was popped


def test_syscall_counts_accumulate(machine):
    def app():
        for _ in range(5):
            yield Sys("getpid")

    task = machine.spawn("t", app)
    machine.run(until=lambda: task.finished, max_cycles=8_000_000_000)
    # 5 getpid + the implicit exit
    assert task.syscall_count == 6


def test_publish_current_task_truncates_comm(machine):
    task = machine.spawn("a-very-long-process-name", lambda: iter(()))
    machine.runtime.publish_current_task(task, 0)
    info = machine.introspector.read_current_process(0)
    assert info.comm == "a-very-long-pro"  # 15 chars + NUL
    assert info.pid == task.pid


def test_kstack_allocation_unique_until_recycled(machine):
    rt = machine.runtime
    tops = {rt._alloc_kstack() for _ in range(10)}
    assert len(tops) == 10
    recycled = tops.pop()
    rt.release_kstack(recycled)
    assert rt._alloc_kstack() == recycled


def test_unknown_action_name_fails_loudly(machine):
    from repro.hypervisor.vcpu import VcpuError

    rt = machine.runtime
    ident = rt.names.act_id("no.such.action")
    with pytest.raises(VcpuError):
        rt.do_act(ident)


def test_platform_selects_clocksource():
    qemu = boot_machine(platform=Platform.QEMU)
    kvm = boot_machine(platform=Platform.KVM)
    from repro.kernel.registry import REGISTRY

    assert REGISTRY.slots["time.clocksource_read"](qemu.runtime) == "read_tsc"
    assert (
        REGISTRY.slots["time.clocksource_read"](kvm.runtime)
        == "kvm_clock_get_cycles"
    )
