"""Shared fixtures: booted machines and profiled view configurations.

Profiling all twelve applications takes a few seconds, so the configs
are produced once per session and shared by every test that needs them.
"""

from __future__ import annotations

import pytest

from repro.analysis.similarity import profile_applications
from repro.guest.machine import boot_machine
from repro.kernel.runtime import Platform


@pytest.fixture()
def machine():
    """A freshly booted KVM-platform machine."""
    return boot_machine(platform=Platform.KVM)


@pytest.fixture()
def qemu_machine():
    """A freshly booted QEMU-platform (profiling) machine."""
    return boot_machine(platform=Platform.QEMU)


@pytest.fixture(scope="session")
def app_configs():
    """Kernel view configs for all twelve Table I applications."""
    return profile_applications(scale=4)


@pytest.fixture(scope="session")
def top_config(app_configs):
    return app_configs["top"]
