"""Figure 3: cross-view kernel code recovery (lazy vs instant).

The scenario the paper describes: a process blocks deep inside the poll
chain while running with a full kernel view; a customized view that
lacks ``sys_poll``/``do_sys_poll``/``do_poll``/``pipe_poll`` is then
enabled for it; when the process is re-scheduled, its stack still
references the missing functions.

* returning to an **even** address lands on ``0f 0b`` -> traps -> *lazy
  recovery*;
* returning to an **odd** address would land on ``0b 0f``, which the CPU
  silently misdecodes -- so the backtrace of the first recovery must
  *instantly* recover such callers.

In this build's layout the return into ``do_sys_poll`` is odd and the
return into ``sys_poll`` is even, giving one case of each (like the
paper's example, with the roles swapped by layout).
"""

from repro.core.facechange import FaceChange
from repro.core.kernel_view import KernelViewConfig
from repro.core.rangelist import BASE_KERNEL, KernelProfile
from repro.guest.machine import boot_machine
from repro.kernel.objects import Compute, Syscall, TaskState
from repro.kernel.runtime import Platform

Sys = Syscall

EXCLUDED = ("sys_poll", "do_sys_poll", "do_poll", "pipe_poll")


def almost_full_config(machine, excluded=EXCLUDED) -> KernelViewConfig:
    """A view containing every kernel function except ``excluded``.

    Built per-function (exact symbol ranges) so whole-function widening
    cannot pull an excluded neighbour back in.
    """
    image = machine.image
    profile = KernelProfile()
    for symbol in image.symbols.values():
        if symbol.name in excluded:
            continue
        if symbol.module is None:
            profile.add(BASE_KERNEL, symbol.address, symbol.address + symbol.size)
        else:
            base = image.modules[symbol.module].base
            profile.add(
                symbol.module,
                symbol.address - base,
                symbol.address - base + symbol.size,
            )
    return KernelViewConfig(app="poller", profile=profile)


def poller_workload(results):
    """Poll an empty pipe; a forked writer fills it after a delay."""

    def writer(fds):
        def child():
            yield Compute(2_500_000)
            yield Sys("write", fd=fds[1], count=64)
        return child

    def driver():
        r, w = yield Sys("pipe")
        pid = yield Sys("fork", child=writer([r, w]), comm="writer")
        results["poll"] = yield Sys(
            "poll", fds=[r], timeout_cycles=50_000_000
        )
        results["read"] = yield Sys("read", fd=r, count=64)
        yield Sys("waitpid", pid=pid)

    return driver


def run_scenario(instant_enabled=True):
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.recovery.instant_recovery_enabled = instant_enabled
    # the paper's cross-view bug manifests when the view takes effect
    # before the process resumes; disable the deferred-switch
    # optimization so the switch happens at context_switch time
    fc.switcher.defer_to_resume = False
    results = {}
    task = machine.spawn("poller", poller_workload(results))
    # 1. let the process block deep inside the poll chain (full view);
    # a small step budget keeps the until-check responsive enough to
    # observe the blocked state before the writer wakes it
    machine.run(
        until=lambda: task.state is TaskState.BLOCKED,
        max_cycles=4_000_000_000,
        step_budget=2_000,
    )
    assert task.state is TaskState.BLOCKED
    # 2. hot-plug the customized view while it is blocked
    fc.load_view(almost_full_config(machine), comm="poller")
    # 3. resume: the poll timeout fires and the process unwinds its stack
    machine.run(
        until=lambda: task.finished,
        max_cycles=machine.cycles + 40_000_000_000,
    )
    return machine, fc, task, results


def test_parities_cover_both_recovery_kinds():
    """Precondition: the chain has one odd and one even return address."""
    from repro.isa.decoder import decode

    machine = boot_machine(platform=Platform.KVM)
    image = machine.image

    def return_addr(caller, callee):
        start, size = (
            image.symbols[caller].address,
            image.symbols[caller].size,
        )
        data = image.read_guest(start, size)
        target = image.address_of(callee)
        pos = 0
        while pos < len(data):
            instr = decode(data, pos)
            if (
                instr.op.value == "call"
                and start + pos + 5 + instr.operand == target
            ):
                return start + pos + 5
            pos += instr.length
        raise AssertionError(f"no call {caller}->{callee}")

    into_do_sys_poll = return_addr("do_sys_poll", "do_poll")
    into_sys_poll = return_addr("sys_poll", "do_sys_poll")
    assert into_do_sys_poll % 2 == 1  # instant-recovery case
    assert into_sys_poll % 2 == 0  # lazy-recovery case


def test_cross_view_recovery_completes_without_corruption():
    machine, fc, task, results = run_scenario(instant_enabled=True)
    assert task.finished
    assert results["poll"] == 1  # the pipe became readable
    assert results["read"] == 64
    assert machine.vcpu.corruption_executed == 0
    recovered = set(fc.log.recovered_functions())
    assert {"do_poll", "sys_poll", "pipe_poll"} <= recovered


def test_odd_caller_recovered_instantly():
    machine, fc, task, results = run_scenario(instant_enabled=True)
    instants = [
        name
        for event in fc.log.events
        for name in event.instant_recoveries
    ]
    assert any("do_sys_poll" in name for name in instants)
    assert fc.recovery.instant_recoveries >= 1
    # and therefore do_sys_poll never needed a lazy recovery of its own
    lazily = fc.log.recovered_functions()
    assert "do_sys_poll" not in lazily


def test_recovery_log_mentions_view_app():
    machine, fc, task, results = run_scenario(instant_enabled=True)
    report = fc.log.report()
    assert "for kernel[poller]" in report


def test_without_instant_recovery_corruption_occurs():
    """The ablation: disabling instant recovery reproduces the bug the
    paper fixed -- the processor silently executes misdecoded split-UD2
    bytes when returning to an odd address."""
    try:
        machine, fc, task, results = run_scenario(instant_enabled=False)
        corrupted = machine.vcpu.corruption_executed
    except Exception:
        # runaway misdecoded execution may crash the guest entirely;
        # that outcome equally demonstrates the hazard
        return
    assert corrupted > 0
