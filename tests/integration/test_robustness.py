"""Failure-injection and robustness tests for FACE-CHANGE.

The paper's flexibility/robustness goals (Section II-B): loading,
unloading and switching views at any time must never jeopardize the
running application or the system.
"""

from repro.core.facechange import FaceChange
from repro.core.kernel_view import KernelViewConfig
from repro.core.rangelist import KernelProfile
from repro.guest.machine import boot_machine
from repro.kernel.objects import Compute, Syscall
from repro.kernel.runtime import Platform
from repro.malware.rootkits import SEBEK_SPEC

Sys = Syscall


def long_runner(progress, iters=20):
    def driver():
        tty = yield Sys("open", path="/dev/tty1")
        for _ in range(iters):
            fd = yield Sys("open", path="/proc/stat")
            yield Sys("read", fd=fd, count=1024)
            yield Sys("close", fd=fd)
            yield Sys("write", fd=tty, count=256)
            yield Sys("nanosleep", cycles=150_000)
            progress["n"] = progress.get("n", 0) + 1
    return driver


def test_empty_view_recovers_everything(app_configs):
    """Worst-case profiling (an empty view): the app still runs, with
    every touched function recovered on demand -- the robustness goal."""
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    empty = KernelViewConfig(app="top", profile=KernelProfile())
    fc.load_view(empty, comm="top")
    progress = {}
    task = machine.spawn("top", long_runner(progress, iters=6))
    machine.run(until=lambda: task.finished, max_cycles=400_000_000_000)
    assert task.finished
    assert progress["n"] == 6
    assert fc.recovery.recoveries > 20
    assert machine.vcpu.corruption_executed == 0


def test_repeated_load_unload_cycles(app_configs):
    """Hot plug/unplug the view many times while the app runs."""
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    progress = {}
    task = machine.spawn("top", long_runner(progress, iters=18))
    for _ in range(5):
        index = fc.load_view(app_configs["top"], comm="top")
        machine.run(
            until=lambda: task.finished,
            max_cycles=machine.cycles + 3_000_000,
            step_budget=20_000,
        )
        fc.unload_view(index)
        if task.finished:
            break
    machine.run(until=lambda: task.finished, max_cycles=400_000_000_000)
    assert task.finished
    assert progress["n"] == 18


def test_enable_disable_cycles(app_configs):
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    progress = {}
    task = machine.spawn("top", long_runner(progress, iters=12))
    for _ in range(3):
        fc.enable()
        fc.load_view(app_configs["top"], comm="top")
        machine.run(
            until=lambda: task.finished,
            max_cycles=machine.cycles + 3_000_000,
            step_budget=20_000,
        )
        for view in list(fc.loaded_views):
            fc.unload_view(view.index)
        fc.disable()
        if task.finished:
            break
    machine.run(until=lambda: task.finished, max_cycles=400_000_000_000)
    assert task.finished
    assert machine.ept.overridden_gpfns() == []


def test_module_load_during_enforcement(app_configs):
    """insmod while a view is live: the view is extended, the module's
    first execution recovers, the app keeps running."""
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(app_configs["bash"], comm="bash")
    progress = {}

    def bash_like():
        tty = yield Sys("open", path="/dev/tty1")
        for i in range(10):
            if i == 3:
                yield Sys("init_module", module_spec=SEBEK_SPEC)
            fd = yield Sys("open", path="/etc/x")
            yield Sys("read", fd=fd, count=256)
            yield Sys("close", fd=fd)
            progress["n"] = progress.get("n", 0) + 1

    task = machine.spawn("bash", bash_like)
    machine.run(until=lambda: task.finished, max_cycles=400_000_000_000)
    assert task.finished
    assert progress["n"] == 10
    # the view covers the newly loaded (visible) module
    view = fc.view_for("bash")
    module = machine.image.modules["sebek"]
    assert view.region_of(module.base) is not None
    # and its hooked-read code got recovered when bash read
    assert "sebek_sys_read" in fc.log.recovered_functions()


def test_task_killed_while_under_view(app_configs):
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(app_configs["top"], comm="top")

    def victim():
        def child():
            while True:
                fd = yield Sys("open", path="/proc/stat")
                yield Sys("read", fd=fd, count=512)
                yield Sys("close", fd=fd)
                yield Sys("nanosleep", cycles=150_000)
        return child

    def killer():
        pid = yield Sys("fork", child=victim(), comm="top")
        yield Compute(2_000_000)
        yield Sys("kill", pid=pid, signum=9)
        got = yield Sys("waitpid", pid=pid)
        assert got == pid

    task = machine.spawn("killer", killer)
    machine.run(until=lambda: task.finished, max_cycles=400_000_000_000)
    assert task.finished


def test_view_for_exited_process_is_harmless(app_configs):
    """The selector keeps naming an app that no longer runs; later
    processes with other names still get the full view."""
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(app_configs["gzip"], comm="gzip")
    progress = {}
    first = machine.spawn("gzip", long_runner(progress, iters=2))
    machine.run(until=lambda: first.finished, max_cycles=400_000_000_000)
    second = machine.spawn("other", long_runner({}, iters=2))
    machine.run(until=lambda: second.finished, max_cycles=400_000_000_000)
    assert second.finished
