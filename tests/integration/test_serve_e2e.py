"""Serve daemon end-to-end: real guests, bit-identity with the batch fleet.

The control plane is unit-tested with fake executors in
``tests/unit/test_serve_daemon.py``; here jobs really boot, fork and
run, and the headline invariant is enforced: a job submitted to the
daemon produces **exactly** the virtual-cycle score (cycles, syscalls)
that the same job produces in a ``repro fleet`` batch run.
"""

import pytest

from repro.fleet import ProfileLibrary, prepare_offline_phase, run_fleet
from repro.fleet.spec import FleetSpec
from repro.serve import ServeDaemon, TenantPolicy


@pytest.fixture(scope="module")
def library(tmp_path_factory):
    lib = ProfileLibrary(tmp_path_factory.mktemp("serve-lib"))
    prepare_offline_phase(lib, ["top"], scale=2)
    return lib


@pytest.fixture()
def daemon(library):
    d = ServeDaemon(library, min_workers=1, max_workers=2, warm_target=1)
    d.start()
    yield d
    d.shutdown(timeout=30.0)


def test_daemon_scores_bit_identical_to_batch_fleet(library, daemon):
    spec = FleetSpec.from_dict(
        {"name": "ref", "workers": 2, "scale": 2,
         "jobs": [{"app": "top"}, {"app": "top", "attack": "Injectso"}]}
    )
    report = run_fleet(spec, library, use_processes=False)
    assert report.failed == 0
    batch = {
        r["name"]: (r["cycles"], r["syscalls"]) for r in report.results
    }

    clean = daemon.submit({"app": "top", "scale": 2})
    infected = daemon.submit(
        {"app": "top", "scale": 2, "attack": "Injectso"}
    )
    for qjob in (clean, infected):
        done = daemon.queue.wait_terminal(qjob.id, timeout=120.0)
        assert done is not None and done.state == "done", done.error

    # same auto-assigned names -> same derived seeds -> same scores
    assert clean.job.name == "top#0"
    assert infected.job.name == "top+Injectso#0"
    served = {
        q.job.name: (q.result["cycles"], q.result["syscalls"])
        for q in (clean, infected)
    }
    assert served == batch

    # the attack is detected through the warm-forked clone too
    assert infected.result["detected"] is True
    assert infected.result["evidence"]

    # jobs came off the warm pool, and lifetime telemetry covers both
    pool = daemon.pool.stats()
    assert sum(v["hits"] + v["misses"] for v in pool.values()) >= 2
    assert daemon.stats()["jobs_telemetry"]["sources"] == 2


def test_real_budget_exhaustion_aborts_mid_job(library):
    daemon = ServeDaemon(
        library,
        min_workers=1,
        max_workers=1,
        warm_target=0,
        default_policy=TenantPolicy(cycle_budget=10_000),
    )
    daemon.start()
    try:
        qjob = daemon.submit({"app": "top", "scale": 2})
        done = daemon.queue.wait_terminal(qjob.id, timeout=120.0)
        assert done.state == "failed"
        assert "budget exhausted mid-job" in done.error
        # the partial consumption was charged, pinning the tenant
        tenants = daemon.queue.describe()["tenants"]
        assert tenants["default"]["charged_cycles"] > 10_000
        assert daemon.queue.remaining_budget("default") == 0
    finally:
        daemon.shutdown(timeout=30.0)


def test_cancel_queued_job_behind_a_busy_worker(library):
    daemon = ServeDaemon(
        library, min_workers=1, max_workers=1, warm_target=0
    )
    daemon.start()
    try:
        running = daemon.submit({"app": "top", "scale": 2})
        queued = daemon.submit({"app": "top", "scale": 2})
        assert daemon.queue.cancel(queued.id) in (
            "cancelled", "cancel-requested"
        )
        done = daemon.queue.wait_terminal(running.id, timeout=120.0)
        assert done.state == "done"
        final = daemon.queue.wait_terminal(queued.id, timeout=120.0)
        assert final.state == "cancelled"
    finally:
        daemon.shutdown(timeout=30.0)
