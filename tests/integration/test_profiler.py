"""Profiling-phase integration tests (Section III-A)."""

import pytest

from repro.core.profiler import Profiler
from repro.core.rangelist import BASE_KERNEL
from repro.kernel.objects import Compute, Syscall

Sys = Syscall


def proc_reader(iters=8):
    def driver():
        for _ in range(iters):
            fd = yield Sys("open", path="/proc/stat")
            yield Sys("read", fd=fd, count=1024)
            yield Sys("close", fd=fd)
            yield Compute(300_000)
    return driver


def file_writer(iters=8):
    def driver():
        fd = yield Sys("open", path="/data/x")
        for _ in range(iters):
            yield Sys("write", fd=fd, count=1024)
        yield Sys("fsync", fd=fd)
        yield Sys("close", fd=fd)
    return driver


def run(machine, comm, factory):
    task = machine.spawn(comm, factory)
    machine.run(until=lambda: task.finished, max_cycles=8_000_000_000)
    assert task.finished


def test_profiler_records_kernel_blocks(qemu_machine):
    prof = Profiler(qemu_machine)
    prof.track("reader")
    prof.install()
    run(qemu_machine, "reader", proc_reader())
    assert prof.blocks_recorded > 0
    config = prof.export("reader")
    assert config.size > 0
    assert BASE_KERNEL in config.profile.segments


def test_profile_contains_executed_functions(qemu_machine):
    prof = Profiler(qemu_machine)
    prof.track("reader")
    prof.install()
    run(qemu_machine, "reader", proc_reader())
    config = prof.export("reader")
    image = qemu_machine.image
    for fn in ("sys_open", "proc_reg_read", "seq_read", "syscall_call"):
        addr = image.address_of(fn)
        assert config.profile.contains(BASE_KERNEL, addr), fn


def test_profile_excludes_unexecuted_functions(qemu_machine):
    prof = Profiler(qemu_machine)
    prof.track("reader")
    prof.install()
    run(qemu_machine, "reader", proc_reader())
    config = prof.export("reader", include_interrupts=False)
    image = qemu_machine.image
    for fn in ("inet_create", "sys_bind", "udp_recvmsg", "sys_fork"):
        addr = image.address_of(fn)
        assert not config.profile.contains(BASE_KERNEL, addr), fn


def test_untracked_process_not_profiled(qemu_machine):
    prof = Profiler(qemu_machine)
    prof.track("reader")
    prof.install()
    run(qemu_machine, "other", file_writer())
    assert "other" not in prof.profiles
    with pytest.raises(KeyError):
        prof.export("other")


def test_track_all_mode(qemu_machine):
    prof = Profiler(qemu_machine, track_all=True)
    prof.install()
    run(qemu_machine, "anything", proc_reader(4))
    assert "anything" in prof.profiles


def test_interrupt_context_separated_and_merged(qemu_machine):
    prof = Profiler(qemu_machine)
    prof.track("reader")
    prof.install()
    run(qemu_machine, "reader", proc_reader())
    # the timer path was recorded as interrupt context, not per-app
    assert prof.interrupt_profile.size > 0
    image = qemu_machine.image
    addr = image.address_of("timer_interrupt")
    without = prof.export("reader", include_interrupts=False)
    with_ints = prof.export("reader", include_interrupts=True)
    assert with_ints.size >= without.size
    assert with_ints.profile.contains(BASE_KERNEL, addr)


def test_qemu_platform_profiles_tsc_not_kvmclock(qemu_machine):
    """The root cause of the paper's III-B3 benign recoveries."""
    prof = Profiler(qemu_machine)
    prof.track("reader")
    prof.install()
    run(qemu_machine, "reader", proc_reader())
    config = prof.export("reader")
    image = qemu_machine.image
    assert config.profile.contains(BASE_KERNEL, image.address_of("read_tsc"))
    assert not config.profile.contains(
        BASE_KERNEL, image.address_of("kvm_clock_get_cycles")
    )


def test_module_code_recorded_relative(qemu_machine):
    prof = Profiler(qemu_machine)
    prof.track("writer")
    prof.install()
    run(qemu_machine, "writer", file_writer())
    config = prof.export("writer")
    assert "ext4" in config.profile.segments
    module = qemu_machine.image.modules["ext4"]
    rel = (
        qemu_machine.image.address_of("ext4_file_write") - module.base
    )
    assert config.profile.contains("ext4", rel)
    # relative ranges stay within the module
    for begin, end in config.profile.segments["ext4"]:
        assert 0 <= begin < end <= module.size


def test_uninstall_stops_recording(qemu_machine):
    prof = Profiler(qemu_machine)
    prof.track("reader")
    prof.install()
    prof.uninstall()
    run(qemu_machine, "reader", proc_reader(2))
    assert prof.blocks_recorded == 0
