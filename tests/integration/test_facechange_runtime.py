"""FACE-CHANGE runtime-phase integration: switching, recovery, hot-plug."""

import pytest

from repro.core.facechange import FaceChange
from repro.core.profiler import Profiler
from repro.core.provenance import DEFAULT_BENIGN_RECOVERIES
from repro.core.switching import FULL_KERNEL_VIEW_INDEX
from repro.guest.machine import boot_machine
from repro.kernel.objects import Compute, Syscall
from repro.kernel.runtime import Platform

Sys = Syscall


def top_workload(iters=10):
    def driver():
        tty = yield Sys("open", path="/dev/tty1")
        for _ in range(iters):
            fd = yield Sys("open", path="/proc/stat")
            yield Sys("read", fd=fd, count=2048)
            yield Sys("close", fd=fd)
            yield Sys("write", fd=tty, count=512)
            yield Compute(450_000)
            yield Sys("nanosleep", cycles=100_000)
    return driver


@pytest.fixture(scope="module")
def topview():
    machine = boot_machine(platform=Platform.QEMU)
    prof = Profiler(machine)
    prof.track("top")
    prof.install()
    task = machine.spawn("top", top_workload())
    machine.run(until=lambda: task.finished, max_cycles=40_000_000_000)
    assert task.finished
    return prof.export("top")


def enforce(config, workload, comm="top", max_cycles=80_000_000_000):
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(config, comm=comm)
    task = machine.spawn(comm, workload)
    machine.run(until=lambda: task.finished, max_cycles=max_cycles)
    assert task.finished
    return machine, fc


def test_app_runs_correctly_under_its_view(topview):
    """The robustness goal: same workload, same behaviour."""
    machine, fc = enforce(topview, top_workload())
    assert fc.stats.view_switches > 0
    assert fc.stats.context_switch_traps > 0


def test_deferred_switch_via_resume_trap(topview):
    machine, fc = enforce(topview, top_workload())
    # every switch *to* the custom view went through resume_userspace
    assert fc.stats.resume_traps > 0
    assert fc.stats.resume_traps <= fc.stats.context_switch_traps


def test_unknown_process_gets_full_view(topview):
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(topview, comm="top")
    assert fc._select_view("random") == FULL_KERNEL_VIEW_INDEX

    def other():
        fd = yield Sys("open", path="/data/z")
        yield Sys("write", fd=fd, count=64)

    task = machine.spawn("random", other)
    machine.run(until=lambda: task.finished, max_cycles=8_000_000_000)
    assert task.finished
    assert fc.recovery.recoveries == 0  # full view never recovers


def test_kvmclock_chain_recovered(topview):
    """Section III-B3: profiled under QEMU, run under KVM."""
    machine, fc = enforce(topview, top_workload())
    recovered = set(fc.log.recovered_functions())
    assert "kvm_clock_get_cycles" in recovered
    assert "kvm_clock_read" in recovered
    assert "pvclock_clocksource_read" in recovered
    # native_read_tsc was already in the view (QEMU used the TSC path)
    assert "native_read_tsc" not in recovered


def test_benign_recoveries_are_interrupt_context(topview):
    machine, fc = enforce(topview, top_workload())
    assert len(fc.log) > 0
    for event in fc.log:
        assert event.in_interrupt
    assert fc.log.anomalous(benign=DEFAULT_BENIGN_RECOVERIES) == []


def test_recovery_backtrace_walks_irq_path(topview):
    machine, fc = enforce(topview, top_workload())
    event = fc.log.events[0]
    symbols = [f.symbol for f in event.backtrace]
    assert any("timer_interrupt" in s for s in symbols)
    assert any("irq_entry" in s for s in symbols)


def test_recovered_code_runs_without_retrap(topview):
    machine, fc = enforce(topview, top_workload(iters=20))
    names = fc.log.recovered_functions()
    # each missing function is recovered exactly once
    assert len(names) == len(set(names))


def test_same_view_switch_skipped(topview):
    machine, fc = enforce(topview, top_workload())
    assert fc.stats.skipped_switches >= 0
    # consecutive full-view processes (idle<->others) skip EPT updates
    machine2 = boot_machine(platform=Platform.KVM)
    fc2 = FaceChange(machine2)
    fc2.enable()
    fc2.load_view(topview, comm="top")

    def plain():
        for _ in range(4):
            yield Sys("nanosleep", cycles=200_000)

    t = machine2.spawn("plain", plain)
    machine2.run(until=lambda: t.finished, max_cycles=8_000_000_000)
    assert fc2.stats.skipped_switches > 0


def test_hot_unload_view(topview):
    """Flexibility goal (III-B4): unload without breaking the app."""
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    index = fc.load_view(topview, comm="top")
    progress = {"n": 0}

    def long_top():
        tty = yield Sys("open", path="/dev/tty1")
        for _ in range(12):
            fd = yield Sys("open", path="/proc/stat")
            yield Sys("read", fd=fd, count=1024)
            yield Sys("close", fd=fd)
            yield Sys("nanosleep", cycles=200_000)
            progress["n"] += 1

    task = machine.spawn("top", long_top)
    machine.run(until=lambda: progress["n"] >= 4, max_cycles=40_000_000_000)
    frames_before = machine.physmem.allocated_frame_count()
    fc.unload_view(index)
    assert machine.physmem.allocated_frame_count() < frames_before
    machine.run(until=lambda: task.finished, max_cycles=80_000_000_000)
    assert task.finished
    assert fc.view_for("top") is None


def test_disable_reenables_full_kernel(topview):
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(topview, comm="top")
    task = machine.spawn("top", top_workload(iters=3))
    machine.run(until=lambda: task.finished, max_cycles=40_000_000_000)
    fc.disable()
    assert machine.ept.overridden_gpfns() == []
    assert not fc.enabled

    def after():
        fd = yield Sys("open", path="/proc/stat")
        yield Sys("read", fd=fd, count=512)

    t2 = machine.spawn("top", after)
    machine.run(until=lambda: t2.finished, max_cycles=8_000_000_000)
    assert t2.finished


def test_multiple_views_coexist(app_configs):
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    for comm in ("top", "gzip", "bash"):
        fc.load_view(app_configs[comm], comm=comm)
    assert fc.stats.loaded_views == 3

    def tiny(path):
        def driver():
            fd = yield Sys("open", path=path)
            yield Sys("read", fd=fd, count=256)
            yield Sys("close", fd=fd)
        return driver

    tasks = [
        machine.spawn("top", tiny("/proc/stat")),
        machine.spawn("gzip", tiny("/data/a")),
    ]
    machine.run(
        until=lambda: all(t.finished for t in tasks),
        max_cycles=40_000_000_000,
    )
    assert all(t.finished for t in tasks)
