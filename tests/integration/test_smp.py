"""Multi-vCPU guest tests (the paper's §V-C future work, implemented).

The guest boots with two vCPUs, each with its own EPT; tasks are pinned
to a CPU at creation (matching the paper's observation that processes
stay pinned during execution); FACE-CHANGE performs per-vCPU kernel view
switching -- including running two different customized views on the two
CPUs *simultaneously*.
"""

import pytest

from repro.core.facechange import FaceChange
from repro.guest.machine import boot_machine
from repro.kernel.objects import Compute, Syscall
from repro.kernel.runtime import Platform

Sys = Syscall


def file_worker(results, key, iters=8):
    def driver():
        fd = yield Sys("open", path=f"/data/{key}")
        total = 0
        for _ in range(iters):
            total += yield Sys("read", fd=fd, count=1024)
            yield Compute(60_000)
        yield Sys("close", fd=fd)
        results[key] = total
    return driver


def proc_worker(results, key, iters=8):
    def driver():
        total = 0
        for _ in range(iters):
            fd = yield Sys("open", path="/proc/stat")
            total += yield Sys("read", fd=fd, count=512)
            yield Sys("close", fd=fd)
            yield Compute(60_000)
        results[key] = total
    return driver


@pytest.fixture()
def smp():
    return boot_machine(platform=Platform.KVM, vcpu_count=2)


def test_boot_two_vcpus(smp):
    assert smp.vcpu_count == 2
    assert len(smp.vcpus) == 2
    assert len(smp.epts) == 2
    assert smp.epts[0] is not smp.epts[1]
    info0 = smp.introspector.read_current_process(0)
    info1 = smp.introspector.read_current_process(1)
    assert info0.comm == "swapper"
    assert info1.comm == "swapper/1"


def test_tasks_spread_and_run_on_both_cpus(smp):
    results = {}
    a = smp.spawn("worker-a", file_worker(results, "a"), cpu=0)
    b = smp.spawn("worker-b", file_worker(results, "b"), cpu=1)
    assert (a.cpu, b.cpu) == (0, 1)
    smp.run(
        until=lambda: a.finished and b.finished,
        max_cycles=40_000_000_000,
    )
    assert results["a"] == results["b"] == 8 * 1024
    # both vCPUs executed guest instructions
    assert smp.vcpus[0].instructions > 0
    assert smp.vcpus[1].instructions > 0


def test_round_robin_pinning(smp):
    tasks = [smp.spawn(f"t{i}", proc_worker({}, f"t{i}", 1)) for i in range(4)]
    assert [t.cpu for t in tasks] == [0, 1, 0, 1]


def test_cross_cpu_pipe_communication(smp):
    """A pipe between processes pinned to different CPUs."""
    results = {}

    def consumer(h):
        def child():
            yield Sys("close", fd=h[1])
            total = 0
            while True:
                n = yield Sys("read", fd=h[0], count=128)
                if n <= 0:
                    break
                total += n
            results["got"] = total
        return child

    def producer():
        r, w = yield Sys("pipe")
        # the child lands on the other CPU via round-robin pinning
        pid = yield Sys("fork", child=consumer([r, w]), comm="consumer")
        for _ in range(4):
            yield Sys("write", fd=w, count=128)
            yield Compute(80_000)
        yield Sys("close", fd=w)
        yield Sys("waitpid", pid=pid)

    p = smp.spawn("producer", producer, cpu=0)
    smp.run(until=lambda: p.finished, max_cycles=80_000_000_000)
    assert p.finished
    assert results["got"] == 512


def test_per_vcpu_view_switching(smp, app_configs):
    """Two different customized views live on the two CPUs at once."""
    fc = FaceChange(smp)
    fc.enable()
    fc.load_view(app_configs["top"], comm="top")
    fc.load_view(app_configs["gzip"], comm="gzip")

    results = {}
    top_task = smp.spawn("top", proc_worker(results, "top"), cpu=0)
    gzip_task = smp.spawn("gzip", file_worker(results, "gzip"), cpu=1)

    seen_pairs = set()
    orig_switch = fc.switcher.switch_kernel_view

    def spy(index, cpu=0):
        orig_switch(index, cpu)
        seen_pairs.add((cpu, fc.switcher.current_index[cpu]))

    fc.switcher.switch_kernel_view = spy
    smp.run(
        until=lambda: top_task.finished and gzip_task.finished,
        max_cycles=120_000_000_000,
    )
    assert top_task.finished and gzip_task.finished
    top_index = fc._selector_map["top"]
    gzip_index = fc._selector_map["gzip"]
    assert (0, top_index) in seen_pairs
    assert (1, gzip_index) in seen_pairs
    # views never leak onto the wrong CPU
    assert (0, gzip_index) not in seen_pairs
    assert (1, top_index) not in seen_pairs


def test_view_installed_in_both_epts_when_shared(smp, app_configs):
    """Two instances of one app on two CPUs share one view's frames."""
    fc = FaceChange(smp)
    fc.enable()
    fc.load_view(app_configs["top"], comm="top")
    view = fc.view_for("top")

    results = {}
    t0 = smp.spawn("top", proc_worker(results, "x", 12), cpu=0)
    t1 = smp.spawn("top", proc_worker(results, "y", 12), cpu=1)
    both_installed = {"seen": False}

    def check():
        if len(view.installed_epts) == 2:
            both_installed["seen"] = True
        return t0.finished and t1.finished

    smp.run(until=check, max_cycles=120_000_000_000, step_budget=20_000)
    assert t0.finished and t1.finished
    assert both_installed["seen"]


def test_recovery_attribution_per_cpu(smp, app_configs):
    """kvm-clock recoveries name the process of the faulting CPU."""
    fc = FaceChange(smp)
    fc.enable()
    fc.load_view(app_configs["top"], comm="top")

    def busy_top(results, key):
        def driver():
            for _ in range(10):
                fd = yield Sys("open", path="/proc/stat")
                yield Sys("read", fd=fd, count=512)
                yield Sys("close", fd=fd)
                yield Compute(450_000)
            results[key] = True
        return driver

    results = {}
    t1 = smp.spawn("top", busy_top(results, "a"), cpu=1)
    smp.run(until=lambda: t1.finished, max_cycles=120_000_000_000)
    assert t1.finished
    if fc.log.events:
        for event in fc.log.events:
            assert event.comm == "top"


def test_uniprocessor_unchanged():
    """The default machine still boots exactly one vCPU."""
    machine = boot_machine()
    assert machine.vcpu_count == 1
    assert machine.vcpu is machine.vcpus[0]
    assert machine.ept is machine.epts[0]
