"""Multi-variant fleets: one snapshot per guest build, pinned profiles.

The matrix workflow end to end: the offline phase profiles the app once
per kernel build (pinned to the build digest), the runner groups jobs by
config digest and boots/snapshots each variant exactly once, and every
clone runs under the profile of *its* build -- with detection intact on
every variant.
"""

import pytest

from repro.fleet import ProfileLibrary, run_fleet
from repro.fleet.jobs import prepare_offline_phase
from repro.fleet.spec import FleetSpec
from repro.guest.config import DEFAULT_GUEST_CONFIG, VARIANTS

SCALE = 1


@pytest.fixture(scope="module")
def library(tmp_path_factory):
    libdir = tmp_path_factory.mktemp("variant-lib")
    lib = ProfileLibrary(libdir)
    prepare_offline_phase(lib, ["top"], scale=SCALE)
    prepare_offline_phase(lib, ["top"], scale=SCALE, guest="no-net")
    return lib


def test_offline_phase_pins_one_record_per_build(library):
    variants = library.variants_of("top")
    assert set(variants) == {
        DEFAULT_GUEST_CONFIG.build_digest(),
        VARIANTS["no-net"].build_digest(),
    }


def test_offline_phase_reuses_existing_pins(library, monkeypatch):
    import repro.fleet.jobs as jobs_mod

    def no_profiling(*args, **kwargs):
        raise AssertionError("offline phase must reuse pinned records")

    monkeypatch.setattr(jobs_mod, "profile_app_offline", no_profiling)
    prepare_offline_phase(library, ["top"], scale=SCALE)
    prepare_offline_phase(library, ["top"], scale=SCALE, guest="no-net")


def test_matrix_fleet_runs_every_variant_once(library):
    spec = FleetSpec.from_dict({
        "name": "variants",
        "workers": 2,
        "scale": SCALE,
        "matrix": {
            "apps": ["top"],
            "attacks": ["Adore-ng"],
            "guests": ["default", "no-net"],
        },
    })
    report = run_fleet(spec, library, use_processes=False)
    assert report.failed == 0
    by_name = {r["name"]: r for r in report.results}
    assert by_name["top+Adore-ng@default#0"]["detected"] is True
    assert by_name["top+Adore-ng@no-net#0"]["detected"] is True
    # one snapshot (and two forks) per guest variant
    assert len(report.variants) == 2
    labels = {row["label"] for row in report.variants.values()}
    assert labels == {"default", "no-net"}
    assert all(row["jobs"] == 2 for row in report.variants.values())
    # different builds legitimately produce different virtual clocks
    assert (
        by_name["top@default#0"]["cycles"]
        != by_name["top@no-net#0"]["cycles"]
    )
