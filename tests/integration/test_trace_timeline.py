"""Telemetry tracing end-to-end: the quickstart run as an event timeline.

The acceptance shape for the telemetry subsystem: one enforced run must
produce a timeline containing at least a context-switch trap, a view
switch and a code recovery -- and every recovery trace event must match
a provenance-log entry exactly (same vCPU cycle stamp, same rip).
"""

from repro.analysis.timeline import (
    correlate_recoveries,
    events_for_app,
    format_trace_report,
)
from repro.core.facechange import FaceChange
from repro.guest.machine import boot_machine
from repro.kernel.objects import Compute, Syscall
from repro.kernel.runtime import Platform

Sys = Syscall


def top_workload(iters=8):
    def driver():
        tty = yield Sys("open", path="/dev/tty1")
        for _ in range(iters):
            fd = yield Sys("open", path="/proc/stat")
            yield Sys("read", fd=fd, count=2048)
            yield Sys("close", fd=fd)
            yield Sys("write", fd=tty, count=512)
            yield Compute(450_000)
            yield Sys("nanosleep", cycles=100_000)
    return driver


def traced_run(top_config):
    machine = boot_machine(platform=Platform.KVM)
    machine.enable_tracing()
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(top_config, comm="top")
    task = machine.spawn("top", top_workload())
    machine.run(until=lambda: task.finished, max_cycles=80_000_000_000)
    assert task.finished
    return machine, fc


def test_timeline_contains_the_causal_chain(top_config):
    machine, fc = traced_run(top_config)
    tel = machine.telemetry

    ctxsw = tel.events("ctxsw_trap")
    switches = tel.events("view_switch")
    recoveries = tel.events("recovery")
    assert ctxsw, "no context-switch trap event traced"
    assert switches, "no view switch event traced"
    assert recoveries, "no code-recovery event traced"

    # the deferred-switch chain is causally ordered: the trap selecting
    # the top view precedes the EPT flip that installs it
    first_trap = next(e for e in ctxsw if e.get("comm") == "top")
    first_install = next(e for e in switches if e.get("to_view") == 0)
    assert first_trap.seq < first_install.seq
    assert first_trap.cycles <= first_install.cycles

    # view switches carry the charged EPT cost
    assert all(e.get("cost", 0) > 0 for e in switches)


def test_recovery_events_match_provenance_log(top_config):
    machine, fc = traced_run(top_config)
    pairs = correlate_recoveries(machine.telemetry, fc.log)
    assert pairs
    for event, entry in pairs:
        assert entry is not None, f"unmatched recovery event {event}"
        assert entry.rip == event.get("rip")
        assert entry.cycles == event.cycles
        assert entry.comm == event.get("comm")
    assert len(pairs) == len(fc.log)


def test_counters_agree_with_trace(top_config):
    machine, fc = traced_run(top_config)
    tel = machine.telemetry
    # nothing wrapped in this short run, so events and counters agree
    assert tel.trace.dropped == 0
    assert len(tel.events("ctxsw_trap")) == fc.stats.context_switch_traps
    assert len(tel.events("view_switch")) == fc.stats.view_switches
    assert len(tel.events("recovery")) == fc.stats.recoveries
    # every traced vmexit reason was counted by its pipeline stage
    vmexits = tel.events("vmexit")
    by_reason = {}
    for e in vmexits:
        by_reason[e.get("reason")] = by_reason.get(e.get("reason"), 0) + 1
    assert by_reason.get("ADDRESS_TRAP", 0) == tel.counter(
        "hv.exits.address_trap"
    ).value
    assert by_reason.get("INVALID_OPCODE", 0) == tel.counter(
        "hv.exits.invalid_opcode"
    ).value


def test_per_app_timeline_filter(top_config):
    machine, fc = traced_run(top_config)
    events = events_for_app(machine.telemetry, "top")
    assert events
    kinds = {e.kind for e in events}
    assert "ctxsw_trap" in kinds
    assert "recovery" in kinds or "view_switch" in kinds
    # idle task events are not attributed to top
    assert all(
        e.get("comm") != "swapper" for e in events if e.kind == "ctxsw_trap"
    )


def test_trace_report_renders_all_sections(top_config):
    machine, fc = traced_run(top_config)
    text = format_trace_report(machine.telemetry, fc.log)
    assert "== counters ==" in text
    assert "== timeline ==" in text
    assert "== recovery provenance" in text
    assert "ctxsw_trap" in text
    assert "view_switch" in text
    # every recovery matched its provenance entry
    assert "UNMATCHED" not in text
    assert "Recover 0x" in text


def test_tracing_off_records_nothing_but_counters_still_work(top_config):
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(top_config, comm="top")
    task = machine.spawn("top", top_workload(iters=3))
    machine.run(until=lambda: task.finished, max_cycles=80_000_000_000)
    assert task.finished
    assert len(machine.telemetry.trace) == 0
    assert fc.stats.context_switch_traps > 0
    assert machine.telemetry.counter("hv.exits.address_trap").value > 0
