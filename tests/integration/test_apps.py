"""Application workload tests: each Table I app runs and has the right
kernel footprint shape."""

import pytest

from repro.apps.base import launch
from repro.apps.catalog import APP_CATALOG
from repro.core.profiler import Profiler
from repro.core.rangelist import BASE_KERNEL, similarity_index
from repro.guest.machine import boot_machine
from repro.kernel.runtime import Platform


def profile_one(name, scale=3):
    machine = boot_machine(platform=Platform.QEMU)
    profiler = Profiler(machine)
    profiler.track(name)
    profiler.install()
    handle = launch(machine, name, APP_CATALOG[name], scale=scale)
    handle.run_to_completion(max_cycles=40_000_000_000)
    assert handle.finished, name
    return machine, profiler.export(name)


@pytest.mark.parametrize("name", sorted(APP_CATALOG))
def test_every_app_completes_and_profiles(name):
    machine, config = profile_one(name, scale=2)
    assert config.size > 50_000, f"{name} footprint suspiciously small"


def _touches(machine, config, fn):
    symbol = machine.image.symbols[fn]
    if symbol.module is None:
        return config.profile.contains(BASE_KERNEL, symbol.address)
    base = machine.image.modules[symbol.module].base
    return config.profile.contains(symbol.module, symbol.address - base)


class TestFootprintShape:
    def test_top_is_procfs_and_tty(self):
        machine, config = profile_one("top")
        assert _touches(machine, config, "proc_reg_read")
        assert _touches(machine, config, "tty_write")
        assert not _touches(machine, config, "inet_create")
        assert not _touches(machine, config, "tcp_sendmsg")

    def test_apache_is_tcp_and_sendfile(self):
        machine, config = profile_one("apache")
        assert _touches(machine, config, "inet_csk_accept")
        assert _touches(machine, config, "tcp_recvmsg")
        assert _touches(machine, config, "do_sendfile")
        assert not _touches(machine, config, "proc_reg_read")

    def test_gzip_is_narrow_ext4(self):
        machine, config = profile_one("gzip")
        assert _touches(machine, config, "ext4_file_write")
        assert not _touches(machine, config, "inet_create")
        assert not _touches(machine, config, "tty_write")
        assert not _touches(machine, config, "sys_fork")

    def test_bash_forks_and_pipes(self):
        machine, config = profile_one("bash")
        assert _touches(machine, config, "do_fork")
        assert _touches(machine, config, "sys_pipe")
        assert _touches(machine, config, "sys_dup2")
        assert _touches(machine, config, "tty_read")

    def test_tcpdump_uses_packet_sockets(self):
        machine, config = profile_one("tcpdump")
        assert _touches(machine, config, "packet_create")
        assert _touches(machine, config, "packet_recvmsg")

    def test_firefox_does_dns_over_udp(self):
        machine, config = profile_one("firefox")
        assert _touches(machine, config, "udp_sendmsg")
        assert _touches(machine, config, "udp_recvmsg")
        assert _touches(machine, config, "tcp_sendmsg")

    def test_mysqld_journals(self):
        machine, config = profile_one("mysqld")
        assert _touches(machine, config, "ext4_sync_file")
        assert _touches(machine, config, "jbd2_journal_commit_transaction")
        assert _touches(machine, config, "inet_csk_accept")

    def test_sshd_reads_urandom_and_ptys(self):
        machine, config = profile_one("sshd")
        assert _touches(machine, config, "chrdev_read")
        assert _touches(machine, config, "pty_write")


class TestCategorySimilarity:
    def test_same_category_beats_cross_category(self, app_configs):
        servers = similarity_index(
            app_configs["apache"].profile, app_configs["vsftpd"].profile
        )
        cross = similarity_index(
            app_configs["top"].profile, app_configs["firefox"].profile
        )
        assert servers > cross + 0.2

    def test_gui_pair_is_most_similar(self, app_configs):
        gui = similarity_index(
            app_configs["eog"].profile, app_configs["totem"].profile
        )
        assert gui > 0.85
