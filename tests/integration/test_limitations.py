"""Reproducing the paper's *stated limitations* (Section V).

A faithful reproduction detects what the paper detects -- and misses
what the paper admits to missing:

* §V-A: an attack that only uses kernel code **inside** the host's own
  kernel view triggers no recovery and stays invisible;
* §V-B: a DKOM-style rootkit that only manipulates kernel **data**
  (never executing new kernel code) is not detected, though the
  hidden-code scanner extension and VMI cross-checks narrow the gap.
"""

from repro.analysis.detection import evaluate_attack
from repro.apps.base import Env
from repro.apps.catalog import APP_CATALOG
from repro.core.facechange import FaceChange
from repro.core.provenance import DEFAULT_BENIGN_RECOVERIES
from repro.core.scanner import HiddenCodeScanner
from repro.guest.machine import boot_machine
from repro.kernel.objects import Syscall
from repro.kernel.runtime import Platform
from repro.malware.base import Attack, infected_online

Sys = Syscall


def in_view_payload(env: Env, scale: int):
    """§V-A: a parasite C&C *server* reusing only the host's kernel code.

    The paper's own example: "suppose a web server is compromised and a
    parasite command-and-control server is installed" using only kernel
    functionality within the web server's view.  Every path below --
    TCP socket creation, bind/listen/accept, recv/send, serving a file --
    is code Apache itself was profiled using.
    """
    sock = yield Sys("socket", family="inet", stype="stream")
    yield Sys("setsockopt", fd=sock)
    yield Sys("bind", fd=sock, port=8443)
    yield Sys("listen", fd=sock)
    env.inject_packet(8443, 0, delay=80_000, kind="syn", conn_id=66600)
    env.inject_packet(8443, 128, delay=160_000, kind="data", conn_id=66600)
    conn = yield Sys("accept", fd=sock)
    yield Sys("recv", fd=conn, count=1024)  # C&C command
    fd = yield Sys("open", path="/var/www/secrets.txt")
    yield Sys("fstat", fd=fd)
    yield Sys("sendfile", fd=conn, count=4096)  # exfiltrate
    yield Sys("close", fd=fd)
    yield Sys("close", fd=conn)
    yield Sys("close", fd=sock)


IN_VIEW_ATTACK = Attack(
    name="InViewC2",
    infection_method="online infection: parasite C&C in web server",
    payload="exfiltration using only in-view kernel code",
    host_app="apache",
    build=infected_online("apache", in_view_payload),
)


def test_section5a_in_view_attack_not_detected(app_configs):
    """The paper: 'it would be impossible for us to detect its existence
    in this case.'"""
    result = evaluate_attack(IN_VIEW_ATTACK, app_configs, scale=3)
    assert not result.detected_per_app
    assert not result.detected_union
    assert result.evidence == []


def dkom_hider(machine):
    """§V-B: a DKOM 'attack' -- manipulate kernel data only.

    Simulated as directly unlinking a module descriptor from the guest
    module list (what a DKOM rootkit does to `struct module` entries),
    executing no new kernel code at all.
    """
    machine.image.hide_module("e1000")


def test_section5b_dkom_not_detected_by_view_switching(app_configs):
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(app_configs["top"], comm="top")
    # the DKOM manipulation happens while the system runs
    dkom_hider(machine)
    env = Env(machine)
    task = machine.spawn("top", APP_CATALOG["top"](env, 3))
    machine.run(until=lambda: task.finished, max_cycles=400_000_000_000)
    assert task.finished
    anomalous = fc.log.anomalous(benign=DEFAULT_BENIGN_RECOVERIES)
    # FACE-CHANGE sees nothing: only kernel *data* changed
    assert anomalous == []


def test_hidden_code_scanner_narrows_the_dkom_gap():
    """The §V integration sketch: data-integrity-style cross-checks can
    catch DKOM hiding of *code-bearing* objects.  Hiding a module via
    DKOM leaves orphaned code the scanner attributes."""
    machine = boot_machine(platform=Platform.KVM)
    assert HiddenCodeScanner(machine).scan() == []
    dkom_hider(machine)
    regions = HiddenCodeScanner(machine).scan()
    assert len(regions) == 1
    module = machine.image.modules["e1000"]
    assert regions[0].start == module.base
