"""Module hot-load under live views (FaceChange._on_module_loaded).

When a module is loaded while kernel views are enforced, every existing
view must grow UD2-filled shadow frames covering the module -- and,
crucially, those frames must be *mapped into every EPT the view is
currently installed in* (otherwise the live application would execute
the module's original code outside its view, silently).
"""

from repro.core.facechange import FaceChange
from repro.core.view_manager import gva_to_gpa
from repro.guest.machine import boot_machine
from repro.kernel.objects import Syscall
from repro.kernel.runtime import Platform
from repro.malware.rootkits import SEBEK_SPEC
from repro.memory.layout import PAGE_SIZE

Sys = Syscall


def _hotload_module(machine, spec=SEBEK_SPEC):
    """Load a module the way sys_init_module does, synchronously."""
    machine.image.load_module(spec.name, spec.functions)
    machine.runtime.on_module_loaded(spec.name)
    return machine.image.modules[spec.name]


def _module_gpfns(module):
    first = gva_to_gpa(module.base) >> 12
    last = (gva_to_gpa(module.base + module.size) + PAGE_SIZE - 1) >> 12
    return list(range(first, last))


def test_hotloaded_module_mapped_into_every_live_views_epts(app_configs):
    """SMP: two views live in two different EPTs; both must cover insmod."""
    machine = boot_machine(platform=Platform.KVM, vcpu_count=2)
    fc = FaceChange(machine)
    fc.enable()
    top = fc.load_view(app_configs["top"], comm="top")
    bash = fc.load_view(app_configs["bash"], comm="bash")
    fc.switcher.switch_kernel_view(top, cpu=0)
    fc.switcher.switch_kernel_view(bash, cpu=1)

    module = _hotload_module(machine)

    for index in (top, bash):
        view = fc.switcher.views[index]
        # the view covers the new module region with shadow frames
        assert view.region_of(module.base) is not None
        gpfns = _module_gpfns(module)
        assert all(gpfn in view.frames for gpfn in gpfns)
        # and every EPT the view is installed in maps those frames
        assert view.installed_epts
        for ept in view.installed_epts:
            for gpfn in gpfns:
                assert ept.translate_frame(gpfn) == view.frames[gpfn]

    # views may share frames, but only through the refcounted CoW store
    # (the canonical UD2 frame / original guest frames) -- never a stray
    # private frame that a write in one view could corrupt in the other
    top_frames = fc.switcher.views[top].frames
    bash_frames = fc.switcher.views[bash].frames
    shared = machine.physmem.shared
    for gpfn in _module_gpfns(module):
        if top_frames[gpfn] == bash_frames[gpfn]:
            assert shared.refcount(top_frames[gpfn]) >= 2


def test_hotloaded_module_covered_in_uninstalled_view_on_next_switch(
    app_configs,
):
    """A view not currently installed still grows coverage; the mapping
    appears when the view is next installed."""
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    index = fc.load_view(app_configs["top"], comm="top")
    view = fc.switcher.views[index]
    assert not view.installed_epts  # never switched to yet

    module = _hotload_module(machine)
    assert view.region_of(module.base) is not None

    fc.switcher.switch_kernel_view(index, cpu=0)
    for gpfn in _module_gpfns(module):
        assert machine.ept.translate_frame(gpfn) == view.frames[gpfn]


def test_hotload_during_execution_keeps_running(app_configs):
    """End-to-end: insmod mid-workload, module frames land in the live EPT."""
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    index = fc.load_view(app_configs["top"], comm="top")

    def top_like():
        tty = yield Sys("open", path="/dev/tty1")
        for i in range(6):
            if i == 2:
                yield Sys("init_module", module_spec=SEBEK_SPEC)
            fd = yield Sys("open", path="/proc/stat")
            yield Sys("read", fd=fd, count=1024)
            yield Sys("close", fd=fd)
            yield Sys("write", fd=tty, count=128)

    task = machine.spawn("top", top_like)
    machine.run(until=lambda: task.finished, max_cycles=400_000_000_000)
    assert task.finished

    view = fc.switcher.views[index]
    module = machine.image.modules["sebek"]
    assert view.region_of(module.base) is not None
    for gpfn in _module_gpfns(module):
        assert gpfn in view.frames
    for ept in view.installed_epts:
        for gpfn in _module_gpfns(module):
            assert ept.translate_frame(gpfn) == view.frames[gpfn]
