"""System-level stress: many processes, many views, mixed workloads."""

import pytest

from repro.apps.base import Env, launch
from repro.apps.catalog import APP_CATALOG
from repro.core.facechange import FaceChange
from repro.guest.machine import boot_machine
from repro.kernel.runtime import Platform


@pytest.mark.parametrize("vcpus", [1, 2])
def test_mixed_multiprogramming_under_views(app_configs, vcpus):
    """Six applications with six different views running concurrently --
    the paper's runtime-phase picture (Figure 1) at full width."""
    machine = boot_machine(platform=Platform.KVM, vcpu_count=vcpus)
    fc = FaceChange(machine)
    fc.enable()
    apps = ("top", "gzip", "bash", "apache", "tcpdump", "eog")
    for comm in apps:
        fc.load_view(app_configs[comm], comm=comm)
    env = Env(machine)
    handles = [
        launch(machine, comm, APP_CATALOG[comm], scale=2, env=env)
        for comm in apps
    ]
    machine.run(
        until=lambda: all(h.finished for h in handles),
        max_cycles=2_000_000_000_000,
        step_budget=100_000,
        max_steps=400_000,
    )
    assert all(h.finished for h in handles)
    # every view actually got switched in at least once
    assert fc.stats.view_switches >= len(apps)
    # and the machine is left healthy
    for vcpu in machine.vcpus:
        assert vcpu.corruption_executed == 0


def test_many_sequential_generations(app_configs):
    """Processes come and go for many generations (pid/kstack recycling)."""
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(app_configs["gzip"], comm="gzip")
    from repro.kernel.objects import Syscall

    def spawner(generations):
        def worker():
            def child():
                fd = yield Syscall("open", path="/data/g")
                yield Syscall("read", fd=fd, count=512)
                yield Syscall("close", fd=fd)
            return child

        def driver():
            for _ in range(generations):
                pid = yield Syscall("fork", child=worker(), comm="gzip")
                yield Syscall("waitpid", pid=pid)
        return driver

    task = machine.spawn("spawner", spawner(30))
    machine.run(
        until=lambda: task.finished,
        max_cycles=1_000_000_000_000,
        max_steps=400_000,
    )
    assert task.finished
    # reaped tasks are gone and their kernel stacks were recycled
    live = [t for t in machine.runtime.tasks.values() if not t.is_idle]
    assert len(live) <= 2
    assert len(machine.runtime._kstack_free) > 0
