"""Report generator test (small subset for speed)."""

from repro.analysis.report import generate_report


def test_report_table1_section(app_configs):
    text = generate_report(
        scale=3, sections=["table1"], configs=app_configs
    )
    assert "# FACE-CHANGE reproduction" in text
    assert "## Table I" in text
    assert "similarity range" in text
    assert "firefox" in text
    # only the requested section is present
    assert "## Table II" not in text
    assert "## Figure 6" not in text


def test_report_figure7_section(app_configs):
    text = generate_report(
        scale=3, sections=["fig7"], configs=app_configs
    )
    assert "## Figure 7" in text
    assert "| rate (req/s) |" in text
    assert "## Table I" not in text
