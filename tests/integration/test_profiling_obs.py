"""Integration: sampling profiler, probes and heat analysis on live
enforced runs -- the PR's acceptance criteria."""

import pytest

from repro.apps.base import launch
from repro.apps.catalog import APP_CATALOG
from repro.core.facechange import FaceChange
from repro.core.kernel_view import KernelViewConfig
from repro.core.rangelist import BASE_KERNEL, KernelProfile
from repro.guest.machine import boot_machine
from repro.kernel.runtime import Platform
from repro.obs.profiling import ProbeEngine, ProbeError, analyze_heat
from repro.obs.profiling.sampler import SampleProfile, SamplingProfiler
from repro.telemetry.export import snapshot as telemetry_snapshot
from repro.telemetry.merge import merge_snapshots

SEED = 1234


def sampled_run(app, config, scale=2, seed=SEED, interval=20_000,
                probes=(), recording=False):
    """One enforced run of ``app`` under its view with the sampler on."""
    machine = boot_machine(platform=Platform.KVM)
    journal = None
    if recording:
        journal = machine.start_recording(keep=True)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(config, comm=app)
    sampler = SamplingProfiler(
        machine,
        interval=interval,
        view_provider=lambda cpu: fc.switcher.current_index[cpu],
    )
    sampler.install()
    engine = ProbeEngine(machine)
    for symbol in probes:
        engine.arm(symbol)
    handle = launch(machine, app, APP_CATALOG[app], scale=scale, seed=seed)
    handle.run_to_completion(max_cycles=200_000_000_000)
    assert handle.finished
    return machine, sampler, engine, journal


class TestFlameAcceptance:
    def test_find_pipe_top_table_names_vfs_pipe_functions(self, app_configs):
        _machine, sampler, _engine, _ = sampled_run(
            "find_pipe", app_configs["find_pipe"], scale=3
        )
        profile = sampler.profile
        assert profile.samples > 20
        top_symbols = [row[0] for row in profile.function_rows()[:10]]
        vfs_pipe = {
            "d_lookup", "link_path_walk", "vfs_read", "vfs_write",
            "pipe_read", "pipe_write", "generic_permission",
            "ext4_find_entry", "do_filp_open", "sys_getdents",
        }
        assert vfs_pipe & set(top_symbols), top_symbols
        # the pipe transport shows up in the stacks themselves
        folded = profile.folded()
        assert any(
            "pipe_read" in stack or "pipe_write" in stack
            for stack in folded
        )

    def test_same_seed_runs_sample_identically(self, app_configs):
        profiles = []
        for _ in range(2):
            _m, sampler, _e, _ = sampled_run(
                "find_pipe", app_configs["find_pipe"], scale=2
            )
            profiles.append(sampler.profile)
        assert profiles[0].stacks == profiles[1].stacks
        assert profiles[0].functions == profiles[1].functions


class TestBitIdentity:
    def test_scores_identical_with_sampler_and_probes_on(self, app_configs):
        """The tentpole contract, at test scale: virtual-cycle scores
        are bit-identical whether the statistical layer is on or off."""
        scores = []
        for instrumented in (False, True):
            machine = boot_machine(platform=Platform.KVM)
            fc = FaceChange(machine)
            fc.enable()
            fc.load_view(app_configs["find_pipe"], comm="find_pipe")
            if instrumented:
                sampler = SamplingProfiler(machine, interval=10_000)
                sampler.install()
                engine = ProbeEngine(machine)
                engine.arm("pipe_write")
                engine.arm("vfs_read")
            handle = launch(
                machine, "find_pipe", APP_CATALOG["find_pipe"],
                scale=2, seed=SEED,
            )
            handle.run_to_completion(max_cycles=200_000_000_000)
            assert handle.finished
            scores.append(
                (machine.cycles, machine.runtime.syscalls_executed)
            )
        assert scores[0] == scores[1]


class TestProbes:
    def test_probe_counts_and_spans(self, app_configs):
        machine, _sampler, engine, journal = sampled_run(
            "find_pipe", app_configs["find_pipe"],
            probes=("pipe_write",), recording=True,
        )
        probe = engine.probes["pipe_write"]
        assert probe.hits > 0
        hits = machine.telemetry.labelled.get("probe.hits")
        assert hits.values["pipe_write"] == probe.hits
        probe_spans = [
            r for r in journal.records()
            if r.get("t") == "span" and r.get("kind") == "probe"
        ]
        assert len(probe_spans) == probe.hits
        assert all(s["attrs"]["symbol"] == "pipe_write" for s in probe_spans)

    def test_probe_composes_with_resume_trap_address(self, app_configs):
        """A probe on resume_userspace shares its trap address with
        FACE-CHANGE's own per-vCPU resume traps; both must fire and
        either may be removed first (the PR 1 regression area)."""
        machine = boot_machine(platform=Platform.KVM)
        fc = FaceChange(machine)
        fc.enable()
        fc.load_view(app_configs["top"], comm="top")
        engine = ProbeEngine(machine)
        probe = engine.arm("resume_userspace")
        handle = launch(machine, "top", APP_CATALOG["top"], scale=2,
                        seed=SEED)
        handle.run_to_completion(max_cycles=200_000_000_000)
        assert handle.finished
        assert probe.hits > 0
        assert fc.stats.view_switches > 0  # FACE-CHANGE still switched
        # disarm the probe first; FACE-CHANGE must stay functional
        engine.disarm("resume_userspace")
        fc.disable()  # then tear down FACE-CHANGE's own traps
        assert not machine.hypervisor.trap_consumers(probe.address)

    def test_predicate_filters_by_comm(self, app_configs):
        machine = boot_machine(platform=Platform.KVM)
        fc = FaceChange(machine)
        fc.enable()
        fc.load_view(app_configs["find_pipe"], comm="find_pipe")
        engine = ProbeEngine(machine)
        probe = engine.arm(
            "pipe_read", predicate=lambda task: task.comm == "wc"
        )
        handle = launch(
            machine, "find_pipe", APP_CATALOG["find_pipe"],
            scale=2, seed=SEED,
        )
        handle.run_to_completion(max_cycles=200_000_000_000)
        assert handle.finished
        assert probe.hits > 0  # the consumer child reads the pipe

    def test_unknown_symbol_rejected(self, machine):
        engine = ProbeEngine(machine)
        with pytest.raises(ProbeError):
            engine.arm("no_such_function")


class TestHeat:
    def test_heat_flags_injected_hot_unprofiled_function(self, app_configs):
        machine, sampler, _engine, _ = sampled_run(
            "find_pipe", app_configs["find_pipe"], scale=3
        )
        rows = sampler.profile.function_rows(comm="find_pipe")
        hot = next(r for r in rows if r[1] == BASE_KERNEL)
        symbol, _segment, _count, fn_start, fn_end = hot
        # inject the gap: rebuild the profile without the hot function
        config = app_configs["find_pipe"]
        injected = KernelProfile()
        for seg, ranges in config.profile.segments.items():
            for begin, end in ranges:
                if seg == BASE_KERNEL:
                    if begin < fn_start:
                        injected.add(seg, begin, min(end, fn_start))
                    if end > fn_end:
                        injected.add(seg, max(begin, fn_end), end)
                else:
                    injected.add(seg, begin, end)
        gapped = KernelViewConfig(app="find_pipe", profile=injected)
        snapshot = telemetry_snapshot(machine.telemetry)
        heat = analyze_heat(snapshot, {"find_pipe": gapped})
        flagged = {h.symbol for h in heat.hot_unprofiled}
        assert symbol in flagged
        # against the true profile the same function is NOT flagged
        clean = analyze_heat(snapshot, {"find_pipe": config})
        assert symbol not in {h.symbol for h in clean.hot_unprofiled}

    def test_fleet_merged_heat_equals_solo_heat(self, app_configs, monkeypatch):
        """Per-worker snapshots merged by telemetry/merge.py yield the
        same heat as analyzing each worker solo."""
        from repro.fleet.jobs import run_job_on_fresh_machine
        from repro.fleet.library import ProfileRecord
        from repro.fleet.spec import FleetJob

        monkeypatch.setenv("REPRO_SAMPLE_INTERVAL", "20000")
        snapshots = []
        for app, seed in (("find_pipe", 11), ("top", 22)):
            record = ProfileRecord(config=app_configs[app], baseline=[])
            job = FleetJob(app=app, scale=2, seed=seed, name=f"{app}#0")
            result = run_job_on_fresh_machine(job, record)
            assert result.ok
            snapshots.append(result.telemetry)
        merged = merge_snapshots(snapshots)
        configs = {
            "find_pipe": app_configs["find_pipe"],
            "top": app_configs["top"],
        }
        merged_heat = analyze_heat(merged, configs)
        solo_fp = analyze_heat(snapshots[0], {"find_pipe": configs["find_pipe"]})
        solo_top = analyze_heat(snapshots[1], {"top": configs["top"]})
        assert merged_heat.apps["find_pipe"] == solo_fp.apps["find_pipe"]
        assert merged_heat.apps["top"] == solo_top.apps["top"]
        # overhead attribution merges additively
        assert merged_heat.overhead.samples == (
            solo_fp.overhead.samples + solo_top.overhead.samples
        )

    def test_merged_profile_equals_sum_of_workers(self, app_configs,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLE_INTERVAL", "20000")
        from repro.fleet.jobs import run_job_on_fresh_machine
        from repro.fleet.library import ProfileRecord
        from repro.fleet.spec import FleetJob

        record = ProfileRecord(
            config=app_configs["find_pipe"], baseline=[]
        )
        results = [
            run_job_on_fresh_machine(
                FleetJob(app="find_pipe", scale=2, seed=seed,
                         name=f"find_pipe#{i}"),
                record,
            )
            for i, seed in enumerate((5, 5))
        ]
        workers = [SampleProfile.from_snapshot(r.telemetry) for r in results]
        # same seed -> same samples on both workers (determinism)
        assert workers[0].stacks == workers[1].stacks
        merged = SampleProfile.from_snapshot(
            merge_snapshots([r.telemetry for r in results])
        )
        expected = SampleProfile.merged(workers)
        assert merged.stacks == expected.stacks
        assert merged.functions == expected.functions
        assert merged.samples == expected.samples


class TestReportSection:
    def test_heat_section_renders(self, app_configs):
        from repro.analysis.report import generate_report

        text = generate_report(
            scale=2, sections=["heat"], configs=app_configs
        )
        assert "## Heat" in text
        assert "overhead attribution" in text
        assert "find_pipe" in text

    def test_unknown_section_raises(self, app_configs):
        from repro.analysis.report import generate_report

        with pytest.raises(ValueError, match="unknown report section"):
            generate_report(
                scale=2, sections=["heat", "bogus"], configs=app_configs
            )
