"""Forensic flight recorder end-to-end: a captured attack, replayed.

The acceptance path: record a KBeast infection (the hidden-module
rootkit whose backtraces carry UNKNOWN frames), then prove the journal
file reconstructs the *same* span trees as the live in-memory records
and that ``repro forensics`` renders at least one full
exit -> backtrace -> provenance -> recovery chain from it.
"""

import pytest

from repro.analysis.similarity import profile_applications
from repro.cli import main
from repro.core.facechange import FaceChange
from repro.guest.machine import boot_machine
from repro.kernel.runtime import Platform
from repro.malware import ALL_ATTACKS
from repro.obs import attack_trees
from repro.telemetry import build_span_trees, load_journal


@pytest.fixture(scope="module")
def kbeast_journal(tmp_path_factory):
    """Record one KBeast-on-bash run; returns (path, live span trees)."""
    path = tmp_path_factory.mktemp("forensics") / "kbeast.jsonl"
    config = profile_applications(apps=["bash"], scale=1)["bash"]
    machine = boot_machine(platform=Platform.KVM)
    journal = machine.start_recording(
        path=path, keep=True, meta={"app": "bash", "attack": "KBeast"}
    )
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(config, comm="bash")
    attack = next(a for a in ALL_ATTACKS if a.name == "KBeast")
    handle = attack.launch(machine, scale=1)
    machine.run(
        until=lambda: handle.finished,
        max_cycles=machine.cycles + 20_000_000_000,
        step_budget=50_000,
    )
    live = [n.to_dict() for n in build_span_trees(journal.records())]
    machine.stop_recording()
    return path, live


def test_journal_replays_to_the_live_span_trees(kbeast_journal):
    path, live = kbeast_journal
    data = load_journal(path)
    assert data.complete and data.dropped == 0
    replayed = build_span_trees(data.records)
    assert [n.to_dict() for n in replayed] == live


def test_captured_attack_chain_is_complete(kbeast_journal):
    path, _ = kbeast_journal
    trees = build_span_trees(load_journal(path).records)
    captured = attack_trees(trees)
    assert captured, "KBeast run produced no captured-attack chain"
    # at least one tree carries the full causal chain with real parent
    # links: vmexit -> recovery -> {backtrace, provenance verdict}
    full = []
    for tree in captured:
        if tree.kind != "vmexit":
            continue
        for rec in tree.find("recovery"):
            backtraces = [c for c in rec.children if c.kind == "backtrace"]
            verdicts = [c for c in rec.children if c.kind == "provenance"]
            if backtraces and verdicts:
                full.append((tree, rec, backtraces[0], verdicts[0]))
    assert full, "no vmexit tree contains recovery+backtrace+provenance"
    tree, rec, backtrace, verdict = full[0]
    assert verdict.attrs["verdict"] == "captured-attack"
    assert backtrace.attrs["unknown"] >= 1  # the hidden module's frames
    assert rec.record["parent"] == tree.span_id
    assert backtrace.record["parent"] == rec.span_id
    # spans nest in virtual time
    assert tree.record["start"] <= rec.record["start"]
    assert rec.record["end"] <= tree.record["end"]


def test_forensics_cli_narrates_the_attack(kbeast_journal, capsys):
    path, _ = kbeast_journal
    assert main(["forensics", str(path)]) == 0
    out = capsys.readouterr().out
    assert "captured attacks" in out
    assert "verdict=captured-attack" in out
    assert "UNKNOWN" in out
    assert "vmexit INVALID_OPCODE" in out
    assert "backtrace:" in out
