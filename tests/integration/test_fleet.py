"""End-to-end fleet workflow: profile once, fork many, merge telemetry.

Covers the acceptance path: a profile saved by ``repro profile
--library`` round-trips through the on-disk library (checksum-
validated) and drives enforcement in freshly forked clones with zero
re-profiling.
"""

import json

import pytest

from repro.cli import main
from repro.fleet import ProfileLibrary, run_fleet
from repro.fleet.spec import FleetSpec


@pytest.fixture(scope="module")
def library_dir(tmp_path_factory):
    """A library populated through the CLI, exactly as a user would."""
    libdir = tmp_path_factory.mktemp("cli-lib")
    assert main(
        ["--scale", "2", "profile", "top", "--library", str(libdir)]
    ) == 0
    return libdir


def test_cli_profile_populates_validated_library(library_dir, capsys):
    library = ProfileLibrary(library_dir)
    assert library.apps() == ["top"]
    record = library.get("top")  # checksum-validated load
    assert record.config.app == "top"
    assert record.config.size > 0
    assert record.digest == library.digest_of("top")


def test_cli_profile_reuses_library_entry(library_dir, capsys):
    before = ProfileLibrary(library_dir).digest_of("top")
    assert main(
        ["--scale", "2", "profile", "top", "--library", str(library_dir)]
    ) == 0
    assert ProfileLibrary(library_dir).digest_of("top") == before


def test_library_profile_drives_forked_clones_without_reprofiling(
    library_dir, monkeypatch
):
    """Zero re-profiling: forks enforce straight from the library."""
    import repro.fleet.jobs as jobs_mod

    def no_profiling(*args, **kwargs):
        raise AssertionError("fleet run must not re-profile")

    monkeypatch.setattr(jobs_mod, "profile_app_offline", no_profiling)
    library = ProfileLibrary(library_dir)
    spec = FleetSpec.from_dict(
        {"name": "it", "workers": 2, "scale": 2,
         "jobs": [{"app": "top"}, {"app": "top"},
                  {"app": "top", "attack": "Injectso"}]}
    )
    report = run_fleet(spec, library, use_processes=False)
    assert report.failed == 0
    by_name = {r["name"]: r for r in report.results}
    # clean clones are bit-identical to each other
    assert (by_name["top#0"]["cycles"], by_name["top#0"]["syscalls"]) == (
        by_name["top#1"]["cycles"], by_name["top#1"]["syscalls"])
    # the infected clone is detected via the library's benign baseline
    assert by_name["top+Injectso#0"]["detected"] is True
    assert by_name["top+Injectso#0"]["evidence"]
    # merged fleet telemetry covers all three guests
    assert report.telemetry["sources"] == 3


def test_cli_fleet_runs_from_spec_file(library_dir, tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps({
        "name": "cli-fleet",
        "workers": 2,
        "scale": 2,
        "jobs": [{"app": "top"}, {"app": "top"}],
    }))
    out = tmp_path / "report.json"
    code = main([
        "fleet", str(spec_path),
        "--library", str(library_dir),
        "--no-offline", "--threads",
        "-o", str(out),
    ])
    assert code == 0
    assert "2/2 jobs completed" in capsys.readouterr().out
    report = json.loads(out.read_text())
    assert report["completed"] == 2
    assert report["failed"] == 0
    assert report["telemetry"]["counters"]
    scores = {(r["cycles"], r["syscalls"]) for r in report["results"]}
    assert len(scores) == 1  # identical jobs, identical scores
