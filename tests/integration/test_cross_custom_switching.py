"""Regression: custom->custom view transitions never corrupt execution.

Two processes with *disjoint* kernel views ping-pong via a pipe, forcing
direct custom->custom context switches with both tasks blocked
mid-kernel.  Before the switch-safety refinement (see DESIGN.md), the
incoming task's stack unwound under the other app's view and odd return
targets silently executed misdecoded split-UD2 bytes.
"""

from repro.core.facechange import FaceChange
from repro.guest.machine import boot_machine
from repro.kernel.objects import Syscall
from repro.kernel.runtime import Platform

Sys = Syscall


def _profile_pair():
    """Two workloads with very different kernel footprints."""

    def proc_reader(env, scale):
        def driver():
            for _ in range(scale * 3):
                fd = yield Sys("open", path="/proc/stat")
                yield Sys("read", fd=fd, count=512)
                yield Sys("close", fd=fd)
        return driver

    def file_writer(env, scale):
        def driver():
            fd = yield Sys("open", path="/data/w")
            for _ in range(scale * 3):
                yield Sys("write", fd=fd, count=2048)
            yield Sys("fsync", fd=fd)
            yield Sys("close", fd=fd)
        return driver

    from repro.core.profiler import Profiler
    from repro.apps.base import Env

    configs = {}
    for comm, workload in (("procapp", proc_reader), ("fileapp", file_writer)):
        machine = boot_machine(platform=Platform.QEMU)
        profiler = Profiler(machine)
        profiler.track(comm)
        profiler.install()
        env = Env(machine)
        task = machine.spawn(comm, workload(env, 3))
        machine.run(until=lambda: task.finished, max_cycles=40_000_000_000)
        assert task.finished
        configs[comm] = profiler.export(comm)
    return configs


def test_pingpong_between_disjoint_views():
    configs = _profile_pair()
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(configs["procapp"], comm="procapp")
    fc.load_view(configs["fileapp"], comm="fileapp")

    done = {}

    def ponger(h):
        def driver():
            yield Sys("close", fd=h[1])
            yield Sys("close", fd=h[2])
            while True:
                n = yield Sys("read", fd=h[0], count=64)
                if n <= 0:
                    break
                # do some "fileapp"-flavoured work between turns
                fd = yield Sys("open", path="/data/w")
                yield Sys("write", fd=fd, count=1024)
                yield Sys("close", fd=fd)
                yield Sys("write", fd=h[3], count=64)
        return driver

    def pinger():
        r1, w1 = yield Sys("pipe")
        r2, w2 = yield Sys("pipe")
        pid = yield Sys("fork", child=ponger([r1, w1, r2, w2]), comm="fileapp")
        yield Sys("close", fd=r1)
        yield Sys("close", fd=w2)
        for _ in range(30):
            yield Sys("write", fd=w1, count=64)
            yield Sys("read", fd=r2, count=64)
            # and some "procapp"-flavoured work
            fd = yield Sys("open", path="/proc/stat")
            yield Sys("read", fd=fd, count=256)
            yield Sys("close", fd=fd)
        yield Sys("close", fd=w1)
        yield Sys("close", fd=r2)
        yield Sys("waitpid", pid=pid)
        done["ok"] = True

    task = machine.spawn("procapp", pinger)
    machine.run(
        until=lambda: task.finished,
        max_cycles=1_000_000_000_000,
        max_steps=400_000,
    )
    assert task.finished and done.get("ok")
    # direct custom<->custom switching occurred...
    assert fc.stats.view_switches > 10
    # ...with zero silently misdecoded instructions
    assert machine.vcpu.corruption_executed == 0
