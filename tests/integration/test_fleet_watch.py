"""Live fleet streaming: heartbeats, drift flagging, per-job journals.

A two-job fleet (a healthy ``top`` and a ``gzip`` whose library record
is deliberately *stale* -- its profile truncated, its benign baseline
empty) must stream heartbeats for both jobs, flag the stale job as
drifting before its job finishes, and collect per-job journal files
that parse as valid flight-recorder journals.
"""

import time

import pytest

from repro.cli import main
from repro.core.kernel_view import KernelViewConfig
from repro.core.rangelist import KernelProfile
from repro.fleet import ProfileLibrary, run_fleet
from repro.fleet.spec import FleetSpec
from repro.obs import LiveFleetView
from repro.telemetry import load_journal


@pytest.fixture(scope="module")
def stale_library(tmp_path_factory):
    """top profiled honestly; gzip's record truncated to go stale."""
    libdir = tmp_path_factory.mktemp("watch-lib")
    assert main(["--scale", "2", "profile", "top",
                 "--library", str(libdir)]) == 0
    assert main(["--scale", "2", "profile", "gzip",
                 "--library", str(libdir)]) == 0
    library = ProfileLibrary(libdir)
    record = library.get("gzip")
    truncated = KernelProfile()
    for segment, ranges in record.config.profile.segments.items():
        for i, (begin, end) in enumerate(ranges):
            if i % 3 == 0:  # keep every third range: the rest go stale
                truncated.add(segment, begin, end)
    assert truncated.size < record.config.profile.size
    library.put(
        KernelViewConfig(app="gzip", profile=truncated, notes="stale"),
        baseline=[],
        # supersede the pinned record for gzip's build, not just the
        # app-level current digest: fleet lookups match (app, build)
        guest_digest=record.guest_digest,
    )
    return library


def test_watch_streams_heartbeats_and_flags_drift(stale_library, tmp_path):
    spec = FleetSpec.from_dict({
        "name": "watch", "workers": 2, "scale": 2,
        "jobs": [{"app": "top"}, {"app": "gzip"}],
    })
    baselines = {
        job.name or job.identity(): len(stale_library.get(job.app).baseline)
        for job in spec.jobs
    }
    view = LiveFleetView(baselines=baselines)
    messages = []

    def on_message(message):
        messages.append(dict(message))
        view.update(message, now=time.monotonic())

    journal_dir = tmp_path / "journals"
    report = run_fleet(
        spec,
        stale_library,
        use_processes=False,
        on_message=on_message,
        heartbeat_interval=0.0,
        journal_dir=journal_dir,
    )
    assert report.failed == 0

    # both jobs streamed: start, at least one heartbeat, done
    kinds = {
        name: {m["type"] for m in messages if m.get("job") == name}
        for name in ("top#0", "gzip#0")
    }
    for name, seen in kinds.items():
        assert {"start", "heartbeat", "done"} <= seen, (name, seen)

    # the stale job -- and only it -- drifted, before the pool drained:
    # the DRIFT notice must precede the job's done notice
    assert view.drifting() == ["gzip#0"]
    drift_at = next(
        i for i, n in enumerate(view.notices) if "PROFILE DRIFT" in n
    )
    done_at = next(
        i for i, n in enumerate(view.notices) if n == "[fleet] gzip#0: done"
    )
    assert drift_at < done_at
    assert "re-profile gzip" in view.notices[drift_at]
    assert not view.jobs["top#0"].drifting

    # per-job journals landed on disk as valid, loadable journals
    assert set(report.journal_paths) == {"top#0", "gzip#0"}
    for name, path in report.journal_paths.items():
        data = load_journal(path)
        assert data.meta["job"] == name
        assert data.records, f"{name} journal is empty"
        assert any(r["t"] == "span" for r in data.records)

    # the final table reflects the streamed state
    rendered = view.render(now=time.monotonic())
    gzip_line = next(ln for ln in rendered.splitlines() if "gzip#0" in ln)
    assert "DRIFT" in gzip_line and "done" in gzip_line


def test_cli_fleet_watch_prints_live_notices(stale_library, tmp_path, capsys):
    out = tmp_path / "report.json"
    code = main([
        "fleet", "--apps", "top", "--repeat", "1",
        "--library", str(stale_library.root),
        "--no-offline", "--threads", "--watch", "--heartbeat", "0",
        "-o", str(out),
    ])
    assert code == 0
    captured = capsys.readouterr().out
    assert "[fleet] top#0: started" in captured
    assert "[fleet] top#0: done" in captured
    # the closing table renders one line per job
    assert "state" in captured and "top#0" in captured
