"""The robustness goal (II-B), checked for every Table I application.

"If an application is running under the same workload and same usage
scenario as during profiling, the behavior of this application running
with a customized kernel view should be no different than with a full
kernel view."  Each app is profiled, then re-run under its own view; it
must complete, and every recovery must be benign (interrupt-context or
the kvm-clock chain) -- nothing anomalous.
"""

import pytest

from repro.apps.base import launch
from repro.apps.catalog import APP_CATALOG
from repro.core.facechange import FaceChange
from repro.core.provenance import DEFAULT_BENIGN_RECOVERIES
from repro.guest.machine import boot_machine
from repro.kernel.runtime import Platform


@pytest.mark.parametrize("name", sorted(APP_CATALOG))
def test_app_runs_identically_under_its_view(name, app_configs):
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(app_configs[name], comm=name)
    handle = launch(machine, name, APP_CATALOG[name], scale=4)
    machine.run(
        until=lambda: handle.finished,
        max_cycles=400_000_000_000,
        step_budget=50_000,
    )
    assert handle.finished, name
    # no silent corruption, ever
    assert machine.vcpu.corruption_executed == 0
    # recoveries, if any, are benign: interrupt context or kvm-clock
    anomalous = fc.log.anomalous(benign=DEFAULT_BENIGN_RECOVERIES)
    assert anomalous == [], (name, [e.function_name for e in anomalous])
    # and the view actually confined the app (it was switched in)
    assert fc.stats.view_switches > 0
