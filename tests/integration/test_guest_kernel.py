"""Guest kernel integration tests: whole syscall flows on real bytes."""

from repro.kernel.objects import Compute, Syscall

Sys = Syscall


def run_app(machine, driver_factory, comm="app", max_cycles=2_000_000_000):
    task = machine.spawn(comm, driver_factory)
    machine.run(
        until=lambda: task.finished, max_cycles=max_cycles, step_budget=50_000
    )
    assert task.finished, f"{comm} did not finish"
    return task


class TestFileIo:
    def test_open_read_write_close(self, machine):
        results = {}

        def app():
            fd = yield Sys("open", path="/data/file")
            results["fd"] = fd
            results["read"] = yield Sys("read", fd=fd, count=4096)
            results["write"] = yield Sys("write", fd=fd, count=512)
            results["close"] = yield Sys("close", fd=fd)

        run_app(machine, app)
        assert results["fd"] == 3
        assert results["read"] == 4096
        assert results["write"] == 512
        assert results["close"] == 0

    def test_fd_removed_after_close(self, machine):
        def app():
            fd = yield Sys("open", path="/x")
            yield Sys("close", fd=fd)

        task = run_app(machine, app)
        assert task.fd_table == {}

    def test_proc_vs_ext4_kinds(self, machine):
        kinds = {}

        def app():
            a = yield Sys("open", path="/proc/stat")
            b = yield Sys("open", path="/etc/passwd")
            c = yield Sys("open", path="/dev/tty1")
            table = machine.runtime.current.fd_table
            kinds["a"] = table[a].kind
            kinds["b"] = table[b].kind
            kinds["c"] = table[c].kind
            yield Sys("getpid")

        run_app(machine, app)
        assert kinds == {"a": "proc", "b": "ext4", "c": "tty"}

    def test_lseek_stat_getdents(self, machine):
        results = {}

        def app():
            fd = yield Sys("open", path="/var/log/syslog")
            results["stat"] = yield Sys("stat", path="/var/log/syslog")
            results["fstat"] = yield Sys("fstat", fd=fd)
            results["lseek"] = yield Sys("lseek", fd=fd, offset=4096)
            d = yield Sys("open", path="/var/log")
            results["dents"] = yield Sys("getdents", fd=d)

        run_app(machine, app)
        assert results["lseek"] == 4096

    def test_fsync_touches_journal(self, machine):
        def app():
            fd = yield Sys("open", path="/data/db")
            yield Sys("write", fd=fd, count=4096)
            yield Sys("fsync", fd=fd)

        before = machine.runtime.fs.block_ios
        run_app(machine, app)
        assert machine.runtime.fs.block_ios > before


class TestPipes:
    def test_producer_consumer(self, machine):
        results = {}

        def consumer(h):
            def child():
                yield Sys("close", fd=h[1])
                total = 0
                while True:
                    n = yield Sys("read", fd=h[0], count=256)
                    if n <= 0:
                        break
                    total += n
                results["total"] = total
            return child

        def producer():
            r, w = yield Sys("pipe")
            pid = yield Sys("fork", child=consumer([r, w]), comm="consumer")
            for _ in range(4):
                yield Sys("write", fd=w, count=256)
            yield Sys("close", fd=w)
            results["reaped"] = yield Sys("waitpid", pid=pid)

        run_app(machine, producer)
        assert results["total"] == 1024
        assert results["reaped"] == 2

    def test_pipe_blocks_until_data(self, machine):
        order = []

        def reader(h):
            def child():
                yield Sys("close", fd=h[1])
                n = yield Sys("read", fd=h[0], count=64)
                order.append(("read", n))
            return child

        def writer():
            r, w = yield Sys("pipe")
            pid = yield Sys("fork", child=reader([r, w]), comm="r")
            yield Compute(400_000)  # let the reader block first
            order.append(("write",))
            yield Sys("write", fd=w, count=64)
            yield Sys("close", fd=w)
            yield Sys("waitpid", pid=pid)

        run_app(machine, writer)
        assert order == [("write",), ("read", 64)]


class TestProcesses:
    def test_fork_returns_child_pid_and_zero(self, machine):
        results = {}

        def child_factory():
            def child():
                results["child_pid"] = yield Sys("getpid")
            return child

        def parent():
            pid = yield Sys("fork", child=child_factory(), comm="kid")
            results["fork_ret"] = pid
            yield Sys("waitpid", pid=pid)

        run_app(machine, parent)
        assert results["fork_ret"] == results["child_pid"]

    def test_execve_replaces_driver(self, machine):
        results = {}

        def new_program():
            results["exec"] = yield Sys("getpid")

        def app():
            yield Sys("execve", comm="newprog", driver=new_program)

        task = run_app(machine, app)
        assert "exec" in results
        assert task.comm == "newprog"

    def test_waitpid_reaps_zombie(self, machine):
        def noop():
            def child():
                yield Sys("getpid")
            return child

        def parent():
            pid = yield Sys("fork", child=noop(), comm="kid")
            got = yield Sys("waitpid", pid=pid)
            assert got == pid

        run_app(machine, parent)
        # the zombie is gone from the task table
        comms = [t.comm for t in machine.runtime.tasks.values()]
        assert "kid" not in comms

    def test_waitpid_without_children(self, machine):
        results = {}

        def app():
            results["ret"] = yield Sys("waitpid", pid=12345)

        run_app(machine, app)
        assert results["ret"] == -10  # -ECHILD

    def test_sched_yield_and_identity(self, machine):
        results = {}

        def app():
            results["yield"] = yield Sys("sched_yield")
            results["uid"] = yield Sys("getuid")
            results["ppid"] = yield Sys("getppid")

        run_app(machine, app)
        assert results["uid"] == 1000

    def test_futex_wait_wake(self, machine):
        results = {}

        def waiter():
            def child():
                results["woke"] = yield Sys("futex", op="wait", key="k")
            return child

        def app():
            pid = yield Sys("fork", child=waiter(), comm="w")
            yield Compute(400_000)
            results["wake"] = yield Sys("futex", op="wake", key="k")
            yield Sys("waitpid", pid=pid)

        run_app(machine, app)
        assert results["wake"] == 1


class TestSignals:
    def test_handler_runs_on_alarm(self, machine):
        results = {"count": 0}

        def handler():
            results["count"] += 1
            yield Sys("getpid")

        def app():
            yield Sys("rt_sigaction", signum=14, handler=handler)
            yield Sys("alarm", delay=150_000)
            while results["count"] < 1:
                yield Compute(250_000)

        run_app(machine, app)
        assert results["count"] == 1

    def test_itimer_fires_repeatedly(self, machine):
        results = {"count": 0}

        def handler():
            results["count"] += 1
            yield Sys("getpid")

        def app():
            yield Sys("rt_sigaction", signum=14, handler=handler)
            yield Sys("setitimer", interval=300_000)
            while results["count"] < 3:
                yield Compute(200_000)
            yield Sys("setitimer", interval=0)

        run_app(machine, app)
        assert results["count"] >= 3

    def test_kill_delivers_between_processes(self, machine):
        results = {}

        def handler():
            results["handled"] = True
            yield Sys("getpid")

        def victim():
            def child():
                yield Sys("rt_sigaction", signum=15, handler=handler)
                while "handled" not in results:
                    yield Sys("nanosleep", cycles=100_000)
            return child

        def app():
            pid = yield Sys("fork", child=victim(), comm="victim")
            yield Compute(500_000)
            yield Sys("kill", pid=pid, signum=15)
            yield Sys("waitpid", pid=pid)

        run_app(machine, app)
        assert results.get("handled")

    def test_unhandled_sigterm_kills(self, machine):
        def victim():
            def child():
                while True:
                    yield Sys("nanosleep", cycles=200_000)
            return child

        def app():
            pid = yield Sys("fork", child=victim(), comm="victim")
            yield Compute(400_000)
            yield Sys("kill", pid=pid, signum=15)
            got = yield Sys("waitpid", pid=pid)
            assert got == pid

        run_app(machine, app)


class TestSockets:
    def test_udp_bind_and_receive(self, machine):
        results = {}

        def app():
            fd = yield Sys("socket", family="inet", stype="dgram")
            results["bind"] = yield Sys("bind", fd=fd, port=9000)
            results["recv"] = yield Sys("recvfrom", fd=fd, count=2048)

        task = machine.spawn("udp", app)
        machine.inject_packet(9000, 777, delay=300_000)
        machine.run(until=lambda: task.finished, max_cycles=2_000_000_000)
        assert results["bind"] == 0
        assert results["recv"] == 777

    def test_tcp_accept_recv_send(self, machine):
        results = {}

        def app():
            fd = yield Sys("socket", family="inet", stype="stream")
            yield Sys("bind", fd=fd, port=8080)
            yield Sys("listen", fd=fd)
            conn = yield Sys("accept", fd=fd)
            results["conn"] = conn
            results["recv"] = yield Sys("recv", fd=conn, count=4096)
            results["send"] = yield Sys("send", fd=conn, count=100)

        task = machine.spawn("tcp", app)
        machine.inject_packet(8080, 0, delay=200_000, kind="syn", conn_id=1)
        machine.inject_packet(8080, 555, delay=400_000, kind="data", conn_id=1)
        machine.run(until=lambda: task.finished, max_cycles=4_000_000_000)
        assert task.finished
        assert results["conn"] > 0
        assert results["recv"] == 555
        assert results["send"] == 100

    def test_nonblocking_accept_returns_eagain(self, machine):
        results = {}

        def app():
            fd = yield Sys(
                "socket", family="inet", stype="stream", nonblocking=True
            )
            yield Sys("bind", fd=fd, port=8081)
            yield Sys("listen", fd=fd)
            results["accept"] = yield Sys("accept", fd=fd)

        run_app(machine, app)
        assert results["accept"] == -11  # -EAGAIN

    def test_udp_client_autobinds(self, machine):
        results = {}

        def app():
            fd = yield Sys("socket", family="inet", stype="dgram")
            yield Sys("sendto", fd=fd, count=64, port=53)
            sock = machine.runtime.current.fd_table[fd].obj
            results["port"] = sock.bound_port
            yield Sys("getpid")

        run_app(machine, app)
        assert results["port"] is not None

    def test_packet_socket_taps_traffic(self, machine):
        results = {}

        def app():
            fd = yield Sys("socket", family="packet", stype="dgram")
            yield Sys("bind", fd=fd, port=0)
            results["got"] = yield Sys("recvfrom", fd=fd, count=4096)

        task = machine.spawn("sniffer", app)
        machine.inject_packet(9999, 333, delay=300_000)  # not our port
        machine.run(until=lambda: task.finished, max_cycles=2_000_000_000)
        assert task.finished
        assert results["got"] == 333

    def test_unix_socket_connect_send(self, machine):
        results = {}

        def app():
            fd = yield Sys("socket", family="unix", stype="stream")
            results["conn"] = yield Sys("connect", fd=fd, port=6000)
            results["sent"] = yield Sys("send", fd=fd, count=256)

        run_app(machine, app)
        assert results["conn"] == 0
        assert results["sent"] == 256


class TestTty:
    def test_read_blocks_for_keystrokes(self, machine):
        results = {}

        def app():
            fd = yield Sys("open", path="/dev/tty1")
            results["n"] = yield Sys("read", fd=fd, count=64)

        task = machine.spawn("sh", app)
        machine.inject_keystrokes(7, delay=400_000)
        machine.run(until=lambda: task.finished, max_cycles=4_000_000_000)
        assert task.finished
        assert results["n"] == 7

    def test_write_counts_output(self, machine):
        def app():
            fd = yield Sys("open", path="/dev/tty1")
            yield Sys("write", fd=fd, count=123)

        run_app(machine, app)
        assert machine.runtime.tty.output_bytes == 123


class TestPollSelect:
    def test_poll_pipe_becomes_ready(self, machine):
        results = {}

        def filler(h):
            def child():
                yield Compute(400_000)
                yield Sys("write", fd=h[1], count=64)
            return child

        def app():
            r, w = yield Sys("pipe")
            pid = yield Sys("fork", child=filler([r, w]), comm="f")
            results["poll"] = yield Sys("poll", fds=[r], timeout_cycles=3_000_000)
            results["read"] = yield Sys("read", fd=r, count=64)
            yield Sys("waitpid", pid=pid)

        run_app(machine, app)
        assert results["poll"] == 1
        assert results["read"] == 64

    def test_poll_timeout_returns_zero(self, machine):
        results = {}

        def app():
            r, w = yield Sys("pipe")
            results["poll"] = yield Sys("poll", fds=[r], timeout_cycles=300_000)

        run_app(machine, app)
        assert results["poll"] == 0

    def test_select_on_regular_file_is_ready(self, machine):
        results = {}

        def app():
            fd = yield Sys("open", path="/etc/hosts")
            results["sel"] = yield Sys("select", fds=[fd], timeout_cycles=100_000)

        run_app(machine, app)
        assert results["sel"] >= 1


class TestMemoryAndTime:
    def test_brk_mmap_munmap(self, machine):
        def app():
            yield Sys("brk", count=8192)
            yield Sys("mmap", count=1 << 20)
            yield Sys("munmap", count=1 << 20)

        run_app(machine, app)

    def test_nanosleep_advances_time(self, machine):
        def app():
            yield Sys("nanosleep", cycles=500_000)

        start = machine.cycles
        run_app(machine, app)
        assert machine.cycles - start >= 500_000

    def test_gettimeofday_runs(self, machine):
        def app():
            yield Sys("gettimeofday")
            yield Sys("time")
            yield Sys("clock_gettime")

        run_app(machine, app)

    def test_unknown_syscall_returns_enosys(self, machine):
        results = {}

        def app():
            results["ret"] = yield Sys("frobnicate")

        run_app(machine, app)
        assert results["ret"] == -38


class TestScheduling:
    def test_preemption_between_cpu_hogs(self, machine):
        """Two compute-bound tasks interleave via timer preemption."""
        trace = []

        def hog(tag):
            def driver():
                for _ in range(6):
                    yield Compute(250_000)
                    trace.append(tag)
            return driver

        a = machine.spawn("hog-a", hog("a"))
        b = machine.spawn("hog-b", hog("b"))
        machine.run(
            until=lambda: a.finished and b.finished,
            max_cycles=40_000_000_000,
        )
        assert a.finished and b.finished
        # both made progress before either finished (interleaving)
        first_half = trace[: len(trace) // 2]
        assert "a" in first_half and "b" in first_half

    def test_context_switches_counted(self, machine):
        def app():
            for _ in range(3):
                yield Sys("nanosleep", cycles=300_000)

        before = machine.runtime.sched.context_switches
        run_app(machine, app)
        assert machine.runtime.sched.context_switches > before
