"""Property-based tests for kernel view construction.

Invariant (the heart of the strictness + robustness goals): for ANY
profiled range set,

* every profiled byte is present (identical to the original kernel) in
  the built view -- the app's code is never withheld;
* every byte outside the widened functions is UD2 fill -- no extra code
  leaks into the attack surface;
* function widening never extends past the containing function's
  aligned-prologue boundaries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernel_view import KernelViewConfig
from repro.core.rangelist import BASE_KERNEL, KernelProfile
from repro.core.view_manager import (
    FunctionBoundaryFinder,
    ViewBuilder,
    gva_to_gpa,
)
from repro.guest.machine import boot_machine
from repro.memory.layout import PAGE_SIZE

_MACHINE = boot_machine()
_TEXT = (_MACHINE.image.text_start, _MACHINE.image.text_end)
_SPAN = _TEXT[1] - _TEXT[0]

profiled_ranges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=_SPAN - 2),
        st.integers(min_value=1, max_value=800),
    ).map(
        lambda t: (
            _TEXT[0] + t[0],
            min(_TEXT[0] + t[0] + t[1], _TEXT[1]),
        )
    ),
    min_size=0,
    max_size=8,
)


def _read_view(view, addr, length):
    """Read bytes from the view's shadow frames at guest address addr."""
    out = bytearray()
    while length > 0:
        gpfn = gva_to_gpa(addr) >> 12
        hpfn = view.frames[gpfn]
        offset = addr & (PAGE_SIZE - 1)
        chunk = min(PAGE_SIZE - offset, length)
        out.extend(_MACHINE.physmem.read((hpfn << 12) | offset, chunk))
        addr += chunk
        length -= chunk
    return bytes(out)


@given(profiled_ranges)
@settings(max_examples=30, deadline=None)
def test_view_contains_exactly_the_widened_functions(ranges):
    profile = KernelProfile()
    for begin, end in ranges:
        profile.add(BASE_KERNEL, begin, end)
    config = KernelViewConfig(app="prop", profile=profile)
    view = ViewBuilder(_MACHINE).build(0, config)
    try:
        finder = FunctionBoundaryFinder(_MACHINE.physmem)
        # 1. every profiled byte matches the original kernel image
        for begin, end in profile.segments.get(BASE_KERNEL, []):
            got = _read_view(view, begin, end - begin)
            want = _MACHINE.image.read_guest(begin, end - begin)
            assert got == want
        # 2. widened bounds stay within containing-function boundaries
        for begin, end in profile.segments.get(BASE_KERNEL, []):
            f_begin, _ = finder.containing_function(begin, *_TEXT)
            _, f_end = finder.containing_function(end - 1, *_TEXT)
            assert f_begin <= begin
            assert end <= f_end
        # 3. probe bytes far from any profiled range: still UD2 fill
        widened = []
        for begin, end in profile.segments.get(BASE_KERNEL, []):
            f_begin, _ = finder.containing_function(begin, *_TEXT)
            _, f_end = finder.containing_function(end - 1, *_TEXT)
            widened.append((f_begin, f_end))
        probe = _TEXT[0] + _SPAN // 2
        probe &= ~1  # even address
        if not any(b <= probe < e for b, e in widened):
            assert _read_view(view, probe, 2) in (b"\x0f\x0b",)
    finally:
        view.free()


@given(profiled_ranges)
@settings(max_examples=15, deadline=None)
def test_view_size_accounting(ranges):
    profile = KernelProfile()
    for begin, end in ranges:
        profile.add(BASE_KERNEL, begin, end)
    view = ViewBuilder(_MACHINE).build(0, KernelViewConfig("p", profile))
    try:
        assert view.loaded_bytes >= profile.size
        total_pages = len(view.frames)
        assert view.loaded_bytes <= total_pages * PAGE_SIZE
    finally:
        view.free()
