"""Property-based tests for the K[app] range-list algebra (hypothesis)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.rangelist import KernelProfile, RangeList, similarity_index

ranges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1 << 20),
        st.integers(min_value=1, max_value=4096),
    ).map(lambda t: (t[0], t[0] + t[1])),
    max_size=40,
)


def as_set(rl: RangeList) -> set:
    out = set()
    for begin, end in rl:
        out.update(range(begin, min(end, begin + 8192)))
    return out


@given(ranges)
def test_invariant_sorted_disjoint(pairs):
    rl = RangeList(pairs)
    spans = list(rl)
    for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
        assert a1 < b0  # strictly disjoint and non-adjacent after merging
    for begin, end in spans:
        assert begin < end


@given(ranges)
def test_size_equals_covered_bytes(pairs):
    rl = RangeList(pairs)
    covered = set()
    for begin, end in pairs:
        covered.update(range(begin, end))
    assert rl.size == len(covered)


@given(ranges)
def test_contains_matches_membership(pairs):
    rl = RangeList(pairs)
    covered = set()
    for begin, end in pairs:
        covered.update(range(begin, end))
    probes = {p for begin, end in pairs for p in (begin, end - 1, end)}
    probes |= {0, 1 << 21}
    for p in probes:
        assert rl.contains(p) == (p in covered)


@given(ranges, ranges)
def test_intersection_is_commutative(a_pairs, b_pairs):
    a, b = RangeList(a_pairs), RangeList(b_pairs)
    assert a.intersect(b) == b.intersect(a)


@given(ranges, ranges)
def test_intersection_bounded_by_operands(a_pairs, b_pairs):
    a, b = RangeList(a_pairs), RangeList(b_pairs)
    inter = a.intersect(b)
    assert inter.size <= min(a.size, b.size)
    for begin, end in inter:
        assert a.contains(begin) and b.contains(begin)
        assert a.contains(end - 1) and b.contains(end - 1)


@given(ranges)
def test_self_intersection_is_identity(pairs):
    rl = RangeList(pairs)
    assert rl.intersect(rl) == rl


@given(ranges, ranges)
def test_update_is_union(a_pairs, b_pairs):
    a = RangeList(a_pairs)
    b = RangeList(b_pairs)
    u = a.copy()
    u.update(b)
    covered = set()
    for begin, end in a_pairs + b_pairs:
        covered.update(range(begin, end))
    assert u.size == len(covered)


@given(ranges, st.lists(st.tuples(
    st.integers(min_value=0, max_value=1 << 20),
    st.integers(min_value=1, max_value=4096),
).map(lambda t: (t[0], t[0] + t[1])), max_size=10))
def test_add_is_idempotent(pairs, extra):
    rl = RangeList(pairs)
    once = rl.copy()
    for begin, end in extra:
        once.add(begin, end)
    twice = once.copy()
    for begin, end in extra:
        twice.add(begin, end)
    assert once == twice


@given(ranges, ranges)
def test_similarity_symmetric_and_bounded(a_pairs, b_pairs):
    a, b = KernelProfile(), KernelProfile()
    for begin, end in a_pairs:
        a.add("base kernel", begin, end)
    for begin, end in b_pairs:
        b.add("base kernel", begin, end)
    s_ab = similarity_index(a, b)
    s_ba = similarity_index(b, a)
    assert s_ab == s_ba
    assert 0.0 <= s_ab <= 1.0


@given(ranges)
def test_similarity_reflexive(pairs):
    profile = KernelProfile()
    for begin, end in pairs:
        profile.add("base kernel", begin, end)
    assert similarity_index(profile, profile) == 1.0


@given(ranges)
def test_profile_serialization_roundtrip(pairs):
    profile = KernelProfile()
    for i, (begin, end) in enumerate(pairs):
        profile.add("base kernel" if i % 2 else "ext4", begin, end)
    back = KernelProfile.from_dict(profile.to_dict())
    assert back.to_dict() == profile.to_dict()
    assert back.size == profile.size
