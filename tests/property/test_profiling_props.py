"""Profiling properties: folded-stack codec, sampler-merge associativity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.profiling.flame import decode_folded, encode_folded
from repro.obs.profiling.sampler import SampleProfile

# Symbol-ish frame names, deliberately including the characters the
# folded format must escape (';' joins frames, '\' escapes).
_frames = st.text(
    alphabet=st.sampled_from(list(";\\ab_0") + ["<", ">"]),
    min_size=1,
    max_size=12,
)
_stacks = st.lists(_frames, min_size=0, max_size=10)

_samples = st.lists(
    st.tuples(
        st.sampled_from(["top", "gzip", "find_pipe"]),  # comm
        st.integers(min_value=-1, max_value=3),  # view
        st.integers(min_value=0, max_value=3),  # cpu
        _stacks,  # frames (root-first)
    ),
    max_size=40,
)


class TestFoldedRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(frames=_stacks)
    def test_encode_decode_round_trip(self, frames):
        assert decode_folded(encode_folded(frames)) == frames

    @settings(max_examples=100, deadline=None)
    @given(frames=st.lists(_frames, min_size=2, max_size=10),
           depth=st.integers(min_value=0, max_value=10))
    def test_truncated_chain_round_trips(self, frames, depth):
        # an ebp walk that stops early yields a prefix of the full
        # chain; a truncated stack must survive the codec unchanged
        truncated = frames[: min(depth, len(frames))]
        assert decode_folded(encode_folded(truncated)) == truncated

    @settings(max_examples=100, deadline=None)
    @given(a=_stacks, b=_stacks)
    def test_encoding_is_injective(self, a, b):
        if a != b:
            assert encode_folded(a) != encode_folded(b)


def _profile_of(samples):
    profile = SampleProfile()
    for comm, view, cpu, frames in samples:
        profile.add_sample(comm, view, cpu, frames)
    return profile


def _state(profile):
    return (profile.samples, profile.stacks, profile.functions)


class TestMergeAssociativity:
    @settings(max_examples=100, deadline=None)
    @given(samples=_samples, cut=st.integers(min_value=0, max_value=40))
    def test_worker_merge_equals_concatenated(self, samples, cut):
        """merge(per-worker profiles) == one profile of all samples."""
        cut = min(cut, len(samples))
        merged = SampleProfile.merged(
            [_profile_of(samples[:cut]), _profile_of(samples[cut:])]
        )
        assert _state(merged) == _state(_profile_of(samples))

    @settings(max_examples=60, deadline=None)
    @given(a=_samples, b=_samples, c=_samples)
    def test_merge_grouping_is_irrelevant(self, a, b, c):
        left = _profile_of(a).merge(_profile_of(b)).merge(_profile_of(c))
        right = _profile_of(a).merge(
            _profile_of(b).merge(_profile_of(c))
        )
        assert _state(left) == _state(right)
