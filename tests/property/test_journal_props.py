"""Journal properties: lossless round-trips, seq-gap accounting."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import (
    JOURNAL_SCHEMA,
    Journal,
    JournalError,
    load_journal,
    parse_journal,
)

# JSON-safe payload values (journal lines are plain JSON)
_values = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(max_size=12),
    st.booleans(),
    st.none(),
)
_payloads = st.dictionaries(
    st.text(min_size=1, max_size=8).filter(lambda k: k not in ("t", "seq")),
    _values,
    max_size=4,
)
_appends = st.lists(
    st.tuples(st.sampled_from(["span", "event", "custom"]), _payloads),
    max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(appends=_appends, meta=_payloads)
def test_file_round_trip_is_lossless(tmp_path_factory, appends, meta):
    path = tmp_path_factory.mktemp("journal") / "run.jsonl"
    journal = Journal(path=path, meta=meta)
    for kind, payload in appends:
        journal.append(kind, **payload)
    journal.close()

    data = load_journal(path)
    assert data.schema == JOURNAL_SCHEMA
    assert data.meta == meta
    assert data.complete and data.dropped == 0
    assert len(data.records) == len(appends)
    for seq, ((kind, payload), record) in enumerate(zip(appends, data.records), 1):
        assert record["t"] == kind
        assert record["seq"] == seq
        assert {k: v for k, v in record.items() if k not in ("t", "seq")} == payload


@settings(max_examples=60, deadline=None)
@given(n=st.integers(min_value=0, max_value=40),
       capacity=st.integers(min_value=1, max_value=10))
def test_bounded_buffer_accounts_every_drop(n, capacity):
    journal = Journal(capacity=capacity)
    for i in range(n):
        journal.append("span", id=i)
    kept = journal.records()
    assert len(kept) == min(n, capacity)
    assert journal.dropped == max(0, n - capacity)
    # what survives is exactly the newest suffix, seqs intact
    assert [r["id"] for r in kept] == list(range(max(0, n - capacity), n))
    assert [r["seq"] for r in kept] == list(range(max(0, n - capacity) + 1, n + 1))


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
    data=st.data(),
)
def test_gaps_accepted_iff_footer_accounts_for_them(n, data):
    dropped = data.draw(
        st.sets(st.integers(min_value=1, max_value=n), max_size=n - 1)
        if n > 1
        else st.just(set())
    )
    surviving = [seq for seq in range(1, n + 1) if seq not in dropped]
    if not surviving:
        surviving = [n]
        dropped.discard(n)
    lines = [json.dumps({"t": "header", "schema": JOURNAL_SCHEMA, "meta": {}})]
    lines += [json.dumps({"t": "span", "seq": seq}) for seq in surviving]
    # gaps *before* the last surviving seq are what the footer must cover
    missing = surviving[-1] - len(surviving)
    lines_ok = lines + [
        json.dumps({"t": "footer", "records": n, "dropped": missing})
    ]
    parsed = parse_journal(lines_ok)
    assert [r["seq"] for r in parsed.records] == surviving
    assert parsed.dropped == missing

    if missing:
        lines_bad = lines + [
            json.dumps({"t": "footer", "records": n, "dropped": missing - 1})
        ]
        with pytest.raises(JournalError):
            parse_journal(lines_bad)
        # ...and with no footer at all, the gap is unexplained
        with pytest.raises(JournalError):
            parse_journal(lines)
