"""Property-based tests for the assembler and decoder (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import (
    Act,
    Assembler,
    Call,
    Cond,
    Dispatch,
    FunctionBody,
    NameRegistry,
    While,
    Work,
)
from repro.isa.decoder import decode
from repro.isa.opcodes import Op

names = st.text(
    alphabet="abcdefghijklmnop_", min_size=1, max_size=12
)

simple_stmt = st.one_of(
    st.integers(min_value=0, max_value=600).map(Work),
    names.map(Call),
    names.map(lambda n: Dispatch(f"slot.{n}")),
    names.map(lambda n: Act(f"act.{n}")),
)

stmt = st.recursive(
    simple_stmt,
    lambda inner: st.one_of(
        st.tuples(names, st.lists(inner, max_size=4)).map(
            lambda t: Cond(f"p.{t[0]}", t[1])
        ),
        st.tuples(names, st.lists(inner, max_size=4)).map(
            lambda t: While(f"w.{t[0]}", t[1])
        ),
    ),
    max_leaves=12,
)

bodies = st.tuples(names, st.lists(stmt, max_size=10)).map(
    lambda t: FunctionBody(t[0], t[1])
)


def walk(data: bytes):
    out = []
    pos = 0
    while pos < len(data):
        instr = decode(data, pos)
        assert instr.op is not Op.INVALID, (pos, data[pos])
        out.append((pos, instr))
        pos += instr.length
    assert pos == len(data)
    return out


@given(bodies)
@settings(max_examples=60)
def test_assembled_functions_decode_exactly(body):
    """Every assembled function is a seamless instruction stream."""
    assembled = Assembler(NameRegistry()).assemble(body)
    instrs = walk(bytes(assembled.data))
    # frame: first is push ebp, last is ret
    assert instrs[0][1].op is Op.PUSH_EBP
    assert instrs[-1][1].op is Op.RET


@given(st.integers(min_value=0, max_value=5000), names)
@settings(max_examples=80)
def test_work_size_exact(nbytes, name):
    body = FunctionBody(name, [Work(nbytes)], frame=False)
    assembled = Assembler(NameRegistry()).assemble(body)
    assert assembled.size == nbytes
    for _pos, instr in walk(bytes(assembled.data)):
        assert instr.op is Op.FILL


@given(bodies)
@settings(max_examples=40)
def test_relocation_offsets_in_bounds(body):
    assembled = Assembler(NameRegistry()).assemble(body)
    for reloc in assembled.relocations:
        assert 0 < reloc.offset < assembled.size
        assert reloc.offset + 4 <= assembled.size
        assert reloc.insn_end == reloc.offset + 4


@given(bodies)
@settings(max_examples=40)
def test_assembly_is_deterministic(body):
    a = Assembler(NameRegistry()).assemble(body)
    b = Assembler(NameRegistry()).assemble(body)
    assert bytes(a.data) == bytes(b.data)


@given(st.lists(st.tuples(names, st.booleans()), min_size=1, max_size=30))
def test_name_registry_bijective(entries):
    registry = NameRegistry()
    seen = {}
    for name, is_pred in entries:
        ident = registry.pred_id(name) if is_pred else registry.act_id(name)
        key = (name, is_pred)
        if key in seen:
            assert seen[key] == ident
        seen[key] = ident
    for (name, is_pred), ident in seen.items():
        back = (
            registry.pred_name(ident) if is_pred else registry.act_name(ident)
        )
        assert back == name
