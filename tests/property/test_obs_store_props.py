"""Archive properties: replay equality through rotation, compaction
and torn tails.

The store's core promise is that reading the archive back and replaying
it through a fresh :class:`SeriesBank` reproduces the live bank
bit-for-bit -- across arbitrary observation streams, arbitrary segment
rotation points, and (for the 60 s ring) through compaction.  Torn
tails must never lose records written before the tear.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import AlertTransition, SeriesBank
from repro.obs.store import (
    ObsStore,
    read_archive,
    rebuild_alerts,
    rebuild_bank,
)

_names = st.sampled_from(["serve.queue.depth", "serve.tenant.cycles", "m"])
_labels = st.sampled_from(["", "acme", "initech"])
_values = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
# strictly positive, sometimes sub-resolution, sometimes multi-window
_steps = st.floats(min_value=0.05, max_value=150.0)

_streams = st.lists(
    st.tuples(_names, _labels, _steps, _values), min_size=1, max_size=80
)


class _Clock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


def _drive(store, bank, stream, rotate_every=None):
    """Feed one observation stream to both sides, one tick per point."""
    t = 1000.0
    for i, (name, label, step, value) in enumerate(stream):
        t += step
        bank.observe(name, t, value, label=label, label_key="tenant")
        store.append_sample(t, [(name, label, "tenant", t, value)])
        if rotate_every and (i + 1) % rotate_every == 0:
            store.rotate()
    return t


@settings(max_examples=40, deadline=None)
@given(stream=_streams, rotate_every=st.integers(min_value=1, max_value=9))
def test_replay_equals_live_bank_across_rotations(
    tmp_path_factory, stream, rotate_every
):
    root = tmp_path_factory.mktemp("obs") / "store"
    store = ObsStore(root, clock=_Clock())
    bank = SeriesBank()
    _drive(store, bank, stream, rotate_every=rotate_every)
    store.close()
    archive = read_archive(root)
    assert archive.torn_segments == 0
    assert rebuild_bank(archive).export() == bank.export()


@settings(max_examples=40, deadline=None)
@given(stream=_streams, rotate_every=st.integers(min_value=1, max_value=9))
def test_compaction_preserves_the_60s_ring_exactly(
    tmp_path_factory, stream, rotate_every
):
    root = tmp_path_factory.mktemp("obs") / "store"
    store = ObsStore(root, clock=_Clock())
    bank = SeriesBank()
    _drive(store, bank, stream, rotate_every=rotate_every)
    store.rotate()  # make the tail compactable too
    store.compact_all()
    store.close()
    rebuilt = rebuild_bank(read_archive(root))
    for name, label, _, _ in stream:
        live = bank.get(name, label).export()["60.0"]
        cold = rebuilt.get(name, label).export()["60.0"]
        assert cold == live, (name, label)


@settings(max_examples=30, deadline=None)
@given(stream=_streams, cut=st.integers(min_value=1, max_value=200))
def test_torn_tail_loses_at_most_the_final_record(
    tmp_path_factory, stream, cut
):
    root = tmp_path_factory.mktemp("obs") / "store"
    store = ObsStore(root, clock=_Clock())
    bank = SeriesBank()
    _drive(store, bank, stream)
    # crash: never closed; then tear the final line mid-record (keep at
    # least one byte and never the trailing newline, so the tail is torn)
    segment = max((root / "segments").iterdir())
    raw = segment.read_bytes()
    body = raw.rstrip(b"\n")
    last_nl = body.rfind(b"\n")
    line_len = len(body) - last_nl - 1
    keep = 1 + (cut % line_len)
    segment.write_bytes(raw[: last_nl + 1 + keep])
    archive = read_archive(root)
    assert archive.torn_segments == 1
    assert archive.sample_count() >= len(stream) - 1
    # everything before the tear replays exactly
    expected = SeriesBank()
    for record in archive.samples:
        for name, label, label_key, t, value in record["points"]:
            expected.observe(
                name, t, value, label=label, label_key=label_key
            )
    assert rebuild_bank(archive).export() == expected.export()


_alerts = st.lists(
    st.builds(
        AlertTransition,
        rule=st.sampled_from(["queue_saturated", "budget", "slo"]),
        label=_labels,
        state=st.sampled_from(["firing", "resolved"]),
        value=st.one_of(st.none(), _values),
        threshold=_values,
        at=st.floats(min_value=0, max_value=2e9, allow_nan=False),
        description=st.text(max_size=20),
    ),
    max_size=20,
)


@settings(max_examples=40, deadline=None)
@given(transitions=_alerts)
def test_alert_history_round_trips(tmp_path_factory, transitions):
    root = tmp_path_factory.mktemp("obs") / "store"
    store = ObsStore(root, clock=_Clock())
    for transition in transitions:
        store.append_alert(transition)
    store.close()
    rebuilt = rebuild_alerts(read_archive(root))
    assert [t.to_dict() for t in rebuilt] == [
        t.to_dict() for t in transitions
    ]


@settings(max_examples=20, deadline=None)
@given(stream=_streams)
def test_segment_lines_stay_canonical_json(tmp_path_factory, stream):
    root = tmp_path_factory.mktemp("obs") / "store"
    store = ObsStore(root, clock=_Clock())
    bank = SeriesBank()
    _drive(store, bank, stream)
    store.close()
    for segment in (root / "segments").iterdir():
        for line in segment.read_text().splitlines():
            record = json.loads(line)
            assert line == json.dumps(
                record, separators=(",", ":"), sort_keys=True
            )
