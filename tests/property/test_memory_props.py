"""Property-based tests for physical memory and the UD2 fill invariant."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.decoder import decode
from repro.isa.opcodes import Op, UD2_BYTES
from repro.memory.layout import PAGE_SIZE
from repro.memory.physmem import PhysicalMemory

writes = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3 * PAGE_SIZE),
        st.binary(min_size=1, max_size=64),
    ),
    max_size=20,
)


@given(writes)
@settings(max_examples=60)
def test_memory_behaves_like_byte_array(ops):
    mem = PhysicalMemory()
    shadow = bytearray(4 * PAGE_SIZE)
    for addr, data in ops:
        mem.write(addr, data)
        shadow[addr : addr + len(data)] = data
    assert mem.read(0, len(shadow)) == bytes(shadow)


@given(writes)
@settings(max_examples=40)
def test_versions_monotonic(ops):
    mem = PhysicalMemory()
    last = {}
    for addr, data in ops:
        touched = {
            hpfn
            for hpfn in range(addr >> 12, (addr + len(data) - 1 >> 12) + 1)
        }
        before = {h: mem.version(h) for h in touched}
        mem.write(addr, data)
        for h in touched:
            assert mem.version(h) > before[h]


@given(
    st.integers(min_value=0, max_value=PAGE_SIZE // 2 - 8).map(lambda x: x * 2),
    st.integers(min_value=1, max_value=PAGE_SIZE // 2 - 8).map(lambda x: x * 2 + 1),
)
def test_ud2_fill_parity_invariant(even_off, odd_off):
    """Anywhere inside a page-aligned UD2 fill: even offsets trap, odd
    offsets misdecode silently -- the invariant lazy/instant recovery is
    built on."""
    mem = PhysicalMemory()
    mem.fill(0x10000, PAGE_SIZE, UD2_BYTES)
    page = mem.read(0x10000, PAGE_SIZE)
    assert decode(page, even_off).op is Op.UD2
    assert decode(page, odd_off).op is Op.OR_MIS
