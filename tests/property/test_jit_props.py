"""Property tests: block translation is bit-identical to interpretation.

The translation layer's hard gate (see :mod:`repro.hypervisor.jit`): for
*any* program, guest-visible state -- registers, virtual clock, memory,
bridge side effects, sampler firings -- evolves bit-identically with
translation on or off.  Random programs are run slice by slice on two
otherwise identical worlds, with host-side events (trap arm/disarm
mid-superblock, CoW-style code writes, sampler installation) injected
between slices, and every observable compared after every slice.
"""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypervisor.vcpu import SemanticsBridge, Vcpu
from repro.hypervisor.vmexit import VmExitReason
from repro.isa.opcodes import OP_ACT_SECOND, OP_CTXSW
from repro.memory.ept import ExtendedPageTable
from repro.memory.layout import PAGE_SIZE
from repro.memory.mmu import Mmu
from repro.memory.paging import GuestPageTable
from repro.memory.physmem import PhysicalMemory

CODE_BASE = 0x00010000
STACK_TOP = 0x00020FF0
NSLOTS = 16
SLOT = 64


class TableBridge(SemanticsBridge):
    """Semantic callbacks driven by pre-drawn tables (deterministic)."""

    def __init__(self, preds, slots):
        self.preds = preds
        self.slots = slots
        self.acts = []
        self.ctxsw_count = 0

    def eval_pred(self, pred_id):
        return self.preds.get(pred_id, False)

    def do_act(self, act_id):
        self.acts.append(act_id)

    def resolve_slot(self, slot_id):
        return self.slots.get(slot_id, CODE_BASE + PAGE_SIZE)

    def on_ctxsw(self, vcpu):
        self.ctxsw_count += 1

    def interrupt_pending(self, vcpu):
        return False


def _u32(value):
    return struct.pack("<I", value & 0xFFFFFFFF)


def _body_bytes(kind, imm):
    if kind == 0:
        return b"\x90"  # nop
    if kind == 1:
        return b"\x31\xc0"  # xor eax,eax (2-byte filler)
    if kind == 2:
        return b"\x83\xc0\x2a"  # add eax,imm8 (3-byte filler)
    if kind == 3:
        return b"\x89\x44\x24\x04"  # mov [esp+4],eax (4-byte filler)
    if kind == 4:
        return b"\x55"  # push ebp
    if kind == 5:
        return b"\x89\xe5"  # mov ebp,esp
    if kind == 6:
        return b"\x68" + _u32(imm)  # push imm32
    if kind == 7:
        return b"\x3d" + _u32(imm & 7)  # pred
    if kind == 8:
        return b"\xfa"  # cli
    if kind == 9:
        return b"\xfb"  # sti
    if kind == 10:
        return b"\x0f" + bytes([OP_ACT_SECOND]) + _u32(imm & 15)  # act
    if kind == 11:
        return b"\x0b\xc0"  # or r,r/m (silent misdecode)
    return b"\xc9"  # leave


def _assemble(slot_specs):
    """Lay the drawn slots out in one page; pad is executable filler."""
    page = bytearray(b"\x90" * PAGE_SIZE)
    for i, (body, term, target) in enumerate(slot_specs):
        off = i * SLOT
        code = bytearray()
        for kind, imm in body:
            code += _body_bytes(kind, imm)
        t = target * SLOT
        cur = off + len(code)
        if term == "jmp":
            code += b"\xe9" + _u32(t - (cur + 5))
        elif term == "jz":
            code += b"\x0f\x84" + _u32(t - (cur + 6))
        elif term == "call":
            code += b"\xe8" + _u32(t - (cur + 5))
        elif term == "dispatch":
            code += b"\xff\x14\x85" + _u32(target & 3)
        elif term == "ret":
            code += b"\xc3"
        elif term == "ctxsw":
            code += bytes([OP_CTXSW])
        else:  # hlt
            code += b"\xf4"
        assert len(code) <= SLOT
        page[off : off + len(code)] = code
    return bytes(page)


def _make_world(page, jit, preds, slots_tbl):
    physmem = PhysicalMemory()
    ept = ExtendedPageTable()
    pt = GuestPageTable()
    for gva in range(0x10000, 0x22000, PAGE_SIZE):
        pt.map_page(gva, gva)
    mmu = Mmu(physmem, ept)
    mmu.set_cr3(pt)
    bridge = TableBridge(dict(preds), dict(slots_tbl))
    vcpu = Vcpu(0, mmu, bridge)
    vcpu.esp = STACK_TOP
    vcpu.ebp = STACK_TOP
    vcpu.eip = CODE_BASE
    physmem.write(CODE_BASE, page)
    physmem.write(CODE_BASE + PAGE_SIZE, b"\xf4")  # parking hlt
    if jit:
        vcpu.set_jit(True)
        vcpu._jit.threshold = 1  # translate eagerly under tiny budgets
    return physmem, vcpu, bridge


def _install_sampler(vcpu, record, interval):
    def sampler(v):
        record.append((v.cycles, v.eip))
        return v.cycles + interval

    vcpu.cycle_sampler = sampler


def _state(vcpu, bridge, exit_):
    return (
        exit_.reason,
        exit_.rip,
        vcpu.eip,
        vcpu.esp,
        vcpu.ebp,
        vcpu.zf,
        vcpu.if_enabled,
        vcpu.cycles,
        vcpu.instructions,
        tuple(bridge.acts),
        bridge.ctxsw_count,
        vcpu.misdecodes.value,
    )


_TERMS = ["jmp"] * 4 + ["jz"] * 3 + ["call"] * 2 + [
    "dispatch", "ret", "ctxsw", "hlt",
]


@st.composite
def scenarios(draw):
    preds = {i: draw(st.booleans()) for i in range(8)}
    slots_tbl = {
        i: CODE_BASE + draw(st.integers(0, NSLOTS - 1)) * SLOT for i in range(4)
    }
    slot_specs = []
    for _ in range(NSLOTS):
        body = draw(
            st.lists(
                st.tuples(st.integers(0, 12), st.integers(0, 0xFFFF)),
                max_size=4,
            )
        )
        term = draw(st.sampled_from(_TERMS))
        target = draw(st.integers(0, NSLOTS - 1))
        slot_specs.append((body, term, target))
    events = draw(
        st.lists(
            st.sampled_from(["none", "arm", "disarm", "cow"]),
            min_size=2,
            max_size=4,
        )
    )
    arm_slot = draw(st.integers(0, NSLOTS - 1))
    cow_slot = draw(st.integers(0, NSLOTS - 1))
    budgets = draw(st.lists(st.integers(60, 500), min_size=3, max_size=5))
    interval = draw(st.sampled_from([None, 64, 257]))
    return preds, slots_tbl, slot_specs, events, arm_slot, cow_slot, budgets, interval


@settings(max_examples=30, deadline=None)
@given(scenarios())
def test_translated_equals_interpreted(scenario):
    preds, slots_tbl, slot_specs, events, arm_slot, cow_slot, budgets, interval = (
        scenario
    )
    page = _assemble(slot_specs)
    worlds = [_make_world(page, jit, preds, slots_tbl) for jit in (False, True)]
    samples = [[], []]
    if interval is not None:
        for (_, vcpu, _), record in zip(worlds, samples):
            _install_sampler(vcpu, record, interval)
    for i, budget in enumerate(budgets):
        exits = [vcpu.run(budget=budget) for _, vcpu, _ in worlds]
        assert _state(worlds[0][1], worlds[0][2], exits[0]) == _state(
            worlds[1][1], worlds[1][2], exits[1]
        )
        assert samples[0] == samples[1]
        reason = exits[0].reason
        if reason is VmExitReason.ADDRESS_TRAP:
            for _, vcpu, _ in worlds:
                vcpu.resume_past_trap()
        elif reason is not VmExitReason.BUDGET:
            break  # parked (hlt), faulted, or #UD -- both agreed above
        event = events[i % len(events)]
        addr = CODE_BASE + arm_slot * SLOT
        if event == "arm":
            for _, vcpu, _ in worlds:
                vcpu.arm_trap(addr)
        elif event == "disarm":
            for _, vcpu, _ in worlds:
                vcpu.disarm_trap(addr)
        elif event == "cow":
            # A host-side code write (the CoW shape): same bytes, same
            # version bump, on both worlds.
            for physmem, _, _ in worlds:
                physmem.write(CODE_BASE + cow_slot * SLOT, b"\x90")
                physmem.bump_version(CODE_BASE >> 12)
    mem = [physmem.read(0x10000, 0x12000) for physmem, _, _ in worlds]
    assert mem[0] == mem[1]
