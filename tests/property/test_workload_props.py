"""Property-based whole-guest tests: random workloads never break the OS.

Two deep invariants:

* **liveness/robustness** -- any sequence of (plausible) syscalls runs to
  completion without crashing the guest, regardless of argument garbage;
* **determinism** -- the simulation is fully deterministic: the same
  workload on a fresh machine consumes exactly the same number of
  virtual cycles and instructions (this is what makes every experiment
  in EXPERIMENTS.md reproducible bit-for-bit).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guest.machine import boot_machine
from repro.kernel.objects import Syscall
from repro.kernel.runtime import Platform

Sys = Syscall

# (name, kwargs-template); fd arguments are filled from live fds at run
# time, paths/counts come from the strategy
_CALLS = [
    ("open", {"path": st.sampled_from(
        ["/etc/a", "/proc/stat", "/dev/tty1", "/dev/null", "/x/y/z"])}),
    ("read", {"fd": "fd", "count": st.integers(0, 8192)}),
    ("write", {"fd": "fd", "count": st.integers(0, 8192)}),
    ("close", {"fd": "fd"}),
    ("stat", {"path": st.just("/etc/a")}),
    ("fstat", {"fd": "fd"}),
    ("lseek", {"fd": "fd", "offset": st.integers(0, 1 << 20)}),
    ("brk", {"count": st.integers(0, 1 << 16)}),
    ("getpid", {}),
    ("getuid", {}),
    ("uname", {}),
    ("gettimeofday", {}),
    ("sched_yield", {}),
    ("nanosleep", {"cycles": st.integers(1, 300_000)}),
    ("pipe", {}),
    ("dup2", {"oldfd": "fd", "newfd": st.integers(0, 12)}),
    ("socket", {"family": st.sampled_from(["inet", "unix"]),
                "stype": st.sampled_from(["stream", "dgram"])}),
    ("bind", {"fd": "fd", "port": st.integers(1, 60000)}),
    ("listen", {"fd": "fd"}),
    ("connect", {"fd": "fd", "port": st.integers(1, 60000)}),
    ("send", {"fd": "fd", "count": st.integers(0, 4096)}),
    ("shutdown", {"fd": "fd"}),
    ("getdents", {"fd": "fd"}),
    ("fcntl", {"fd": "fd", "cmd": st.just("setfl_nonblock")}),
    ("mmap", {"count": st.integers(0, 1 << 20)}),
    ("munmap", {"count": st.integers(0, 1 << 20)}),
    ("frobnicate", {}),  # unknown syscall -> -ENOSYS path
]

_call_index = st.integers(0, len(_CALLS) - 1)


@st.composite
def workloads(draw):
    """A list of concrete syscall requests (fd placeholders resolved
    against whatever fds the run has opened so far, cyclically)."""
    n = draw(st.integers(1, 25))
    calls = []
    for _ in range(n):
        name, template = _CALLS[draw(_call_index)]
        args = {}
        for key, value in template.items():
            if value == "fd":
                args[key] = ("fd", draw(st.integers(0, 7)))
            else:
                args[key] = draw(value)
        calls.append((name, args))
    return calls


def _driver(calls, opened):
    def driver():
        for name, template in calls:
            args = {}
            for key, value in template.items():
                if isinstance(value, tuple) and value[0] == "fd":
                    args[key] = (
                        opened[value[1] % len(opened)] if opened else 99
                    )
                else:
                    args[key] = value
            ret = yield Sys(name, **args)
            if name in ("open", "socket") and isinstance(ret, int) and ret >= 0:
                opened.append(ret)
            elif name == "pipe" and isinstance(ret, tuple):
                opened.extend(ret)
    return driver


def _run(calls, max_cycles=2_000_000_000):
    machine = boot_machine(platform=Platform.KVM)
    task = machine.spawn("fuzz", _driver(calls, []))
    machine.run(
        until=lambda: task.finished,
        max_cycles=max_cycles,
        step_budget=50_000,
    )
    return machine, task


@given(workloads())
@settings(max_examples=25, deadline=None)
def test_random_workloads_keep_the_guest_healthy(calls):
    """A random workload may legitimately block forever (e.g. reading a
    pipe whose write end it holds -- real Unix semantics), but it must
    never crash the guest, corrupt execution, or wedge the scheduler."""
    from repro.kernel.objects import TaskState

    machine, task = _run(calls)
    assert task.finished or task.state in (
        TaskState.BLOCKED,
        TaskState.SLEEPING,
        TaskState.RUNNABLE,
        TaskState.RUNNING,
    ), calls
    assert machine.vcpu.corruption_executed == 0
    # the guest is still schedulable: a canary process completes
    def canary_driver():
        yield Sys("getpid")

    canary = machine.spawn("canary", canary_driver)
    machine.run(
        until=lambda: canary.finished,
        max_cycles=machine.cycles + 2_000_000_000,
        step_budget=50_000,
    )
    assert canary.finished, calls


@given(workloads())
@settings(max_examples=10, deadline=None)
def test_simulation_is_deterministic(calls):
    m1, t1 = _run(calls)
    m2, t2 = _run(calls)
    assert t1.finished == t2.finished
    assert t1.state == t2.state
    assert t1.last_retval == t2.last_retval
    assert t1.syscall_count == t2.syscall_count
    assert m1.vcpu.instructions == m2.vcpu.instructions
