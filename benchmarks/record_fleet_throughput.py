#!/usr/bin/env python
"""Record fleet throughput results (``BENCH_fleet.json``).

Measures the same job suite two ways:

* **baseline (1 worker, status quo)** -- one fresh subprocess per job,
  exactly what the repro did before the fleet subsystem existed: cold
  interpreter, cold boot, profile the application, record its benign
  baseline, then run the job (``repro.fleet.jobs.run_job_cold``);
* **fleet (4 workers)** -- one parent boots once, captures a
  copy-on-write :class:`MachineSnapshot`, loads every profile from the
  persistent library (populated once, timed separately as the
  amortized offline phase), then schedules all jobs across the worker
  pool, each on a forked clone.

Two hard gates:

* fleet throughput must be **>= 3x** the baseline's (jobs per
  wall-clock second over the suite);
* every per-guest virtual-cycle score ``(cycles, syscalls)`` from the
  fleet must be **bit-identical** to the solo subprocess run of the
  same job -- forking and scheduling may change wall-clock, never
  guest-visible behaviour.

Usage::

    PYTHONPATH=src python benchmarks/record_fleet_throughput.py

``REPRO_BENCH_SCALE`` (default 2) sets the workload scale;
``REPRO_FLEET_WORKERS`` (default 4) the fleet worker count.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: Required fleet-over-baseline throughput ratio.
MIN_SPEEDUP = 3.0

_ROOT = Path(__file__).resolve().parent.parent

_COLD_SNIPPET = (
    "import json, sys\n"
    "from repro.fleet.jobs import run_job_cold\n"
    "print(json.dumps(run_job_cold(json.loads(sys.argv[1]), int(sys.argv[2]))))\n"
)


def _bench_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE", "2"))


def _workers() -> int:
    return int(os.environ.get("REPRO_FLEET_WORKERS", "4"))


def _job_suite(scale: int) -> dict:
    """The benchmark fleet spec: a mixed clean + infected job suite."""
    jobs = []
    for app in ("top", "gzip", "bash", "tcpdump"):
        jobs.append({"app": app, "scale": scale})
        jobs.append({"app": app, "scale": scale})
    jobs.append({"app": "top", "scale": scale, "attack": "Injectso"})
    return {"name": "throughput", "workers": _workers(), "jobs": jobs}


def _run_baseline(spec) -> dict:
    """One fresh subprocess per job: the pre-fleet status quo."""
    env = dict(os.environ)
    src = str(_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    results = {}
    started = time.monotonic()
    for job in spec.jobs:
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                _COLD_SNIPPET,
                json.dumps(job.to_dict()),
                str(spec.seed),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"baseline subprocess for {job.name} failed:\n{proc.stderr}"
            )
        results[job.name] = json.loads(proc.stdout.strip().splitlines()[-1])
    wall = time.monotonic() - started
    return {"wall_seconds": wall, "results": results}


def main() -> int:
    from repro.fleet import ProfileLibrary, run_fleet
    from repro.fleet.jobs import prepare_offline_phase
    from repro.fleet.spec import FleetSpec

    scale = _bench_scale()
    spec = FleetSpec.from_dict(_job_suite(scale))
    print(f"suite: {len(spec.jobs)} jobs, scale {scale}, "
          f"{spec.workers} fleet workers")

    print("baseline: one fresh subprocess per job (cold boot + profile)...")
    baseline = _run_baseline(spec)
    base_tp = len(spec.jobs) / baseline["wall_seconds"]
    print(f"  {baseline['wall_seconds']:.2f}s "
          f"({base_tp:.2f} jobs/s)")

    with tempfile.TemporaryDirectory(prefix="fleet-lib-") as libdir:
        library = ProfileLibrary(libdir)
        t0 = time.monotonic()
        prepare_offline_phase(library, spec.apps(), scale=scale)
        offline_seconds = time.monotonic() - t0
        print(f"offline phase (once per app, persisted): {offline_seconds:.2f}s")

        print(f"fleet: snapshot + {spec.workers}-worker pool...")
        report = run_fleet(spec, library)
    fleet_tp = report.completed / report.wall_seconds
    print(f"  {report.wall_seconds:.2f}s ({fleet_tp:.2f} jobs/s, "
          f"mode={report.mode}, {report.forked} forks, "
          f"{report.base_frames} shared base frames)")

    status = 0
    mismatches = []
    per_job = {}
    for row in report.results:
        solo = baseline["results"].get(row["name"])
        fleet_score = (row["cycles"], row["syscalls"])
        solo_score = (solo["cycles"], solo["syscalls"]) if solo else None
        per_job[row["name"]] = {
            "ok": row["ok"],
            "fleet": list(fleet_score),
            "solo": list(solo_score) if solo_score else None,
            "identical": fleet_score == solo_score,
        }
        if not row["ok"]:
            mismatches.append(f"{row['name']}: job failed: {row['error']}")
        elif fleet_score != solo_score:
            mismatches.append(
                f"{row['name']}: fleet {fleet_score} != solo {solo_score}"
            )
    if mismatches:
        print("VIRTUAL-CYCLE SCORE DRIFT (fleet changed guest behaviour):")
        for line in mismatches:
            print(f"  {line}")
        status = 1

    speedup = fleet_tp / base_tp if base_tp else 0.0
    print(f"throughput: {fleet_tp:.2f} vs {base_tp:.2f} jobs/s "
          f"= {speedup:.2f}x (required >= {MIN_SPEEDUP}x)")
    if speedup < MIN_SPEEDUP:
        print(f"speedup {speedup:.2f}x below required {MIN_SPEEDUP}x")
        status = 1

    out = {
        "scale": scale,
        "jobs": len(spec.jobs),
        "workers": spec.workers,
        "baseline": {
            "wall_seconds": round(baseline["wall_seconds"], 2),
            "throughput_jobs_per_s": round(base_tp, 3),
        },
        "offline_phase_seconds": round(offline_seconds, 2),
        "fleet": {
            "wall_seconds": round(report.wall_seconds, 2),
            "throughput_jobs_per_s": round(fleet_tp, 3),
            "mode": report.mode,
            "completed": report.completed,
            "failed": report.failed,
            "forked": report.forked,
            "base_frames": report.base_frames,
        },
        "speedup": round(speedup, 2),
        "scores_identical": not mismatches,
        "per_job": per_job,
        "note": (
            "Baseline = the pre-fleet status quo: one fresh subprocess per "
            "job (cold interpreter + boot + profile + benign baseline + "
            "run).  Fleet = boot once, snapshot, fork CoW clones across "
            "the worker pool, profiles loaded from the persistent library "
            "(offline phase timed separately; it runs once per app, ever). "
            "Scores are (virtual cycles, syscalls executed) and must be "
            "bit-identical between a fleet clone and the solo run."
        ),
    }
    path = _ROOT / "BENCH_fleet.json"
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
