#!/usr/bin/env python
"""Record observability-store overhead results (``BENCH_obsstore.json``).

Runs the serve-smoke job suite through two in-process daemons that both
sample metrics at an aggressive 50 ms cadence and differ only in
persistence:

* **store off** -- the PR-9 recorder alone: everything in memory, gone
  at shutdown;
* **store on** -- ``--obs-dir``: every sample tick, alert transition
  and lifecycle event is flushed to the segmented on-disk archive, and
  each job gets a per-request trace journal keyed by its trace id.

Four hard gates:

* every virtual-cycle score ``(cycles, syscalls)`` must be
  **bit-identical** with the store on and off -- archiving reads only
  snapshot paths, never the running guest;
* submit->drain wall clock with the store on must stay within
  ``REPRO_OBSSTORE_WALL_GATE`` (default 1.10, i.e. <= 10% overhead;
  0.5 s absolute grace at smoke scale) of the store-off run;
* replaying the archive must reconstruct the recorder's full ring
  export and alert history **bit-equal** to the live daemon's final
  state -- the durable archive is not a lossy approximation;
* after a daemon restart on the same ``--obs-dir``, the first
  request's end-to-end trace (lifecycle, alerts, guest span forest)
  must still reconstruct from disk via ``repro obs trace``.

Usage::

    PYTHONPATH=src python benchmarks/record_obsstore_overhead.py

``REPRO_BENCH_SCALE`` (default 2) sets the workload scale.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

#: Allowed wall-clock ratio (on / off); env-overridable for noisy CI.
WALL_GATE = float(os.environ.get("REPRO_OBSSTORE_WALL_GATE", "1.10"))

#: Absolute grace on top of the ratio -- at smoke scale the whole run
#: is a few seconds and scheduler jitter alone can exceed 10%.
WALL_GRACE_SECONDS = 0.5

#: Markers the reconstructed trace narrative must contain.
TRACE_MARKERS = ("request lifecycle", "queued", "finished", "span forest")

_ROOT = Path(__file__).resolve().parent.parent


def _bench_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE", "2"))


def _suite(scale: int) -> list:
    """Three rounds of the serve-smoke mix (2 apps + 1 attack across 2
    guest variants), same shape as record_metrics_overhead.py so the
    two benchmarks stay comparable."""
    mix = [
        {"app": "top", "scale": scale},
        {"app": "gzip", "scale": scale},
        {"app": "top", "scale": scale, "attack": "Injectso"},
        {"app": "top", "scale": scale, "guest": "qemu-tsc"},
        {"app": "gzip", "scale": scale, "guest": "qemu-tsc"},
    ]
    return [dict(job) for _ in range(3) for job in mix]


def _run_pass(
    libdir: str, scale: int, obs_dir: str = None, trace_id: str = None
) -> dict:
    """One daemon pass over the suite; returns scores + wall clock +
    (with the store on) the live export/alerts to diff the archive
    against."""
    from repro.fleet import ProfileLibrary
    from repro.serve import ServeClient, ServeDaemon
    from repro.serve.client import ServeClientError

    sock = os.path.join(
        libdir, f"obsstore-{'on' if obs_dir else 'off'}.sock"
    )
    daemon = ServeDaemon(
        ProfileLibrary(libdir),
        socket_path=sock,
        min_workers=1,
        max_workers=1,
        max_queue_depth=5,
        warm_target=1,
        profile_scale=scale,
        metrics_interval=0.05,
        slo_latency=120.0,
        obs_dir=obs_dir,
    )
    daemon.start(guests=["default", "qemu-tsc"])
    client = ServeClient(sock)
    out: dict = {}
    try:
        t0 = time.monotonic()
        ids = []
        for idx, job in enumerate(_suite(scale)):
            # pin the first request to a known trace id so the restart
            # gate can follow it through the archive later
            kwargs = dict(job)
            if idx == 0 and trace_id:
                kwargs["trace_id"] = trace_id
            deadline = time.monotonic() + 60.0
            while True:
                try:
                    ids.append(client.submit(**kwargs)["id"])
                    break
                except ServeClientError:
                    # queue full: refill promptly so the drain stays
                    # saturated (same load shape in both passes)
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.01)
        # Scores are keyed by submission index, not job name: the
        # auto-assigned name counter also burns indices on queue-full
        # rejections, which differ across passes by timing alone.
        results = []
        for job_id in ids:
            response = client.result(job_id, wait=True, timeout=600)
            result = response["result"]
            if not result["ok"]:
                raise RuntimeError(f"{job_id} failed: {result.get('error')}")
            results.append((result["cycles"], result["syscalls"]))
        out["wall_seconds"] = time.monotonic() - t0
        out["results"] = results
        summary = client.shutdown(drain=True, timeout=60)
        if not summary.get("drained"):
            raise RuntimeError("daemon did not drain cleanly")
        # capture the live state AFTER shutdown so the final sample
        # tick is included on both sides of the archive diff
        out["export"] = daemon.metrics.export_series()
        out["alerts"] = [t.to_dict() for t in daemon.metrics.alert_history]
        out["samples"] = out["export"]["samples"]
        return out
    finally:
        if not daemon.stopped.is_set():
            daemon.shutdown(drain=False, timeout=30)


def _restart_daemon(libdir: str, scale: int, obs_dir: str) -> None:
    """Bounce a fresh daemon on the same archive (restart survival)."""
    from repro.fleet import ProfileLibrary
    from repro.serve import ServeDaemon

    daemon = ServeDaemon(
        ProfileLibrary(libdir),
        socket_path=os.path.join(libdir, "obsstore-restart.sock"),
        min_workers=1,
        max_workers=1,
        warm_target=0,
        profile_scale=scale,
        metrics_interval=0.05,
        obs_dir=obs_dir,
    )
    daemon.start()
    time.sleep(0.2)  # a few sample ticks land in the new segment
    daemon.shutdown(drain=True, timeout=30)


def main() -> int:
    from repro.fleet import ProfileLibrary
    from repro.fleet.jobs import prepare_offline_phase
    from repro.obs.store import read_archive, rebuild_export, render_trace
    from repro.serve.protocol import mint_trace_id

    scale = _bench_scale()
    suite = _suite(scale)
    print(f"suite: {len(suite)} jobs, scale {scale}, 2 guest variants")

    status = 0
    trace_id = mint_trace_id()
    with tempfile.TemporaryDirectory(prefix="obsstore-lib-") as libdir:
        obs_dir = os.path.join(libdir, "obs")
        t0 = time.monotonic()
        prepare_offline_phase(
            ProfileLibrary(libdir), ["gzip", "top"], scale=scale
        )
        print(f"offline phase (shared): {time.monotonic() - t0:.2f}s")

        print("pass 1: store off (in-memory recorder only)...")
        off = _run_pass(libdir, scale)
        print(f"  submit->drain wall {off['wall_seconds']:.2f}s")

        print("pass 2: store on (--obs-dir, 50ms flush cadence)...")
        on = _run_pass(libdir, scale, obs_dir=obs_dir, trace_id=trace_id)
        print(f"  submit->drain wall {on['wall_seconds']:.2f}s, "
              f"{on['samples']} samples archived")

        # gate 3: archive replay == live recorder state, bit for bit
        archive = read_archive(obs_dir)
        rebuilt = rebuild_export(archive)
        archive_equal = rebuilt == on["export"]
        archived_alerts = [
            {k: a.get(k) for k in ("rule", "label", "state", "value",
                                   "threshold", "at", "description")}
            for a in archive.alerts
        ]
        alerts_equal = archived_alerts == on["alerts"]
        if not archive_equal:
            print("ARCHIVE DRIFT: replayed export != live export_series")
            status = 1
        if not alerts_equal:
            print("ARCHIVE DRIFT: replayed alert history != live history")
            status = 1
        if archive_equal and alerts_equal:
            print(f"archive replay bit-equal to live state "
                  f"({archive.segments} segment(s), "
                  f"{archive.sample_count()} sample tick(s))")

        # gate 4: the first request's trace survives a daemon restart
        print("restarting a fresh daemon on the same --obs-dir...")
        _restart_daemon(libdir, scale, obs_dir)
        try:
            narrative = render_trace(obs_dir, trace_id)
        except Exception as exc:  # noqa: BLE001 - gate, not control flow
            narrative = ""
            print(f"trace reconstruction failed: {exc}")
        trace_missing = [m for m in TRACE_MARKERS if m not in narrative]
        trace_ok = bool(narrative) and not trace_missing
        if trace_ok:
            print(f"trace {trace_id[:12]}... reconstructed after restart "
                  f"({len(narrative.splitlines())} narrative lines)")
        else:
            print(f"trace narrative incomplete; missing {trace_missing}")
            status = 1

    # gate 1: bit-identical virtual-cycle scores (by submission index)
    mismatches = []
    per_job = {}
    for idx, job in enumerate(suite):
        label = "{:02d}:{}".format(
            idx,
            job["app"]
            + ("+" + job["attack"] if job.get("attack") else "")
            + ("@" + job["guest"] if job.get("guest") else ""),
        )
        score_off = tuple(off["results"][idx])
        score_on = tuple(on["results"][idx])
        per_job[label] = {
            "off": list(score_off),
            "on": list(score_on),
            "identical": score_on == score_off,
        }
        if score_on != score_off:
            mismatches.append(f"{label}: on {score_on} vs off {score_off}")
    if mismatches:
        print("VIRTUAL-CYCLE SCORE DRIFT (the store perturbed the guest):")
        for line in mismatches:
            print(f"  {line}")
        status = 1

    # gate 2: wall-clock overhead
    ratio = (
        on["wall_seconds"] / off["wall_seconds"]
        if off["wall_seconds"] else 0.0
    )
    budget = off["wall_seconds"] * WALL_GATE + WALL_GRACE_SECONDS
    wall_ok = on["wall_seconds"] <= budget
    print(f"wall: on {on['wall_seconds']:.2f}s vs off "
          f"{off['wall_seconds']:.2f}s = {ratio:.3f}x "
          f"(budget {budget:.2f}s, gate {WALL_GATE}x)")
    if not wall_ok:
        print(f"obs-store overhead {ratio:.3f}x exceeds the "
              f"{WALL_GATE}x gate")
        status = 1

    out = {
        "scale": scale,
        "jobs": len(suite),
        "samples_archived": on["samples"],
        "sampling_interval_seconds": 0.05,
        "wall_off_seconds": round(off["wall_seconds"], 3),
        "wall_on_seconds": round(on["wall_seconds"], 3),
        "wall_ratio": round(ratio, 3),
        "wall_gate": WALL_GATE,
        "wall_ok": wall_ok,
        "scores_identical": not mismatches,
        "per_job": per_job,
        "archive_export_bit_equal": archive_equal,
        "archive_alerts_bit_equal": alerts_equal,
        "trace_survives_restart": trace_ok,
        "trace_id": trace_id,
        "note": (
            "Two in-process serve daemons run the smoke suite over one "
            "worker and a 5-deep queue at a 50ms sampling cadence; the "
            "only difference is the persistent observability store "
            "(--obs-dir off vs on).  Scores are (virtual cycles, "
            "syscalls executed) and must be bit-identical: archiving "
            "taps the recorder's snapshot-path observations, never a "
            "running guest.  Replaying the archive must reconstruct "
            "the live ring export and alert history bit-for-bit, and "
            "the first request's trace must still narrate end to end "
            "after a daemon restart on the same archive."
        ),
    }
    path = _ROOT / "BENCH_obsstore.json"
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
