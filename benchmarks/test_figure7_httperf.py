"""Figure 7: Apache I/O throughput ratio under httperf load.

Reproduces Section IV-B2: request rates swept from 5 to 60 requests per
second; the series is FACE-CHANGE-on/FACE-CHANGE-off throughput.  The
paper's claims regenerated:

* the ratio stays ~1.0 below the CPU-saturation knee;
* the knee sits around 55 req/s, beyond which FACE-CHANGE's per-switch
  cost (view switches track the traffic bursts) bites.
"""

from __future__ import annotations

import os

from repro.bench.httperf import run_httperf_sweep


def test_figure7_httperf(benchmark, app_configs):
    connections = int(os.environ.get("REPRO_FIG7_CONNECTIONS", "60"))

    def sweep():
        return run_httperf_sweep(app_configs["apache"], connections=connections)

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("=" * 72)
    print("Figure 7: I/O Performance Results for Apache Web Server")
    print("(throughput ratio: FACE-CHANGE enabled / disabled)")
    print("=" * 72)
    print(f"{'rate (req/s)':>14}{'baseline':>12}{'FACE-CHANGE':>13}{'ratio':>9}")
    for p in points:
        print(
            f"{p.rate:>14}{p.baseline_throughput:>12.2f}"
            f"{p.facechange_throughput:>13.2f}{p.ratio:>9.3f}"
        )
    print("paper: unaffected below ~55 req/s, degrading afterwards")

    by_rate = {p.rate: p for p in points}

    # below the knee: throughput unaffected (the paper's flat region)
    for rate in (5, 10, 15, 20, 25, 30, 35, 40, 45, 50):
        assert by_rate[rate].ratio > 0.97, (rate, by_rate[rate].ratio)

    # beyond the knee: visible degradation
    assert by_rate[60].ratio < 0.99
    # and the degradation is monotone-ish: 60 is worse than the flat region
    flat = sum(by_rate[r].ratio for r in (5, 10, 15, 20, 25)) / 5
    assert by_rate[60].ratio < flat
