#!/usr/bin/env python
"""Record serve-daemon latency results (``BENCH_serve.json``).

Runs one mixed job suite -- two apps plus one malware-infected job,
spread across two guest variants -- three ways:

* **cold (status quo)** -- one fresh subprocess per submission, paying
  interpreter start, guest boot, profiling and the benign baseline
  every time (``repro.fleet.jobs.run_job_cold``): what answering a
  one-off request cost before the daemon existed;
* **batch fleet** -- ``run_fleet`` over the same spec, the bit-identity
  reference;
* **daemon** -- a real ``repro serve`` subprocess with warm snapshot
  pools, driven through its control socket exactly like ``repro ctl``:
  each job is submitted and awaited sequentially, so the measured
  number is submit->result *latency*, not pool throughput.

Two hard gates:

* mean warm submit->result latency must be **>= 3x** faster than the
  cold per-request path;
* every daemon virtual-cycle score ``(cycles, syscalls)`` must be
  **bit-identical** to the batch fleet run *and* to the solo cold run
  of the same job -- the service layer may change wall-clock, never
  guest-visible behaviour.

Usage::

    PYTHONPATH=src python benchmarks/record_serve_throughput.py

``REPRO_BENCH_SCALE`` (default 2) sets the workload scale.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: Required cold-over-warm latency ratio.
MIN_SPEEDUP = 3.0

_ROOT = Path(__file__).resolve().parent.parent

_COLD_SNIPPET = (
    "import json, sys\n"
    "from repro.fleet.jobs import run_job_cold\n"
    "print(json.dumps(run_job_cold(json.loads(sys.argv[1]), int(sys.argv[2]))))\n"
)


def _bench_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE", "2"))


def _suite(scale: int) -> dict:
    """2 apps + 1 attack across 2 guest variants (the CI smoke suite)."""
    return {
        "name": "serve-latency",
        "workers": 2,
        "jobs": [
            {"app": "top", "scale": scale},
            {"app": "gzip", "scale": scale},
            {"app": "top", "scale": scale, "attack": "Injectso"},
            {"app": "top", "scale": scale, "guest": "qemu-tsc"},
            {"app": "gzip", "scale": scale, "guest": "qemu-tsc"},
        ],
    }


def _src_env() -> dict:
    env = dict(os.environ)
    src = str(_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _run_cold(spec) -> dict:
    """One fresh subprocess per submission: the pre-daemon status quo."""
    env = _src_env()
    results, latencies = {}, {}
    for job in spec.jobs:
        started = time.monotonic()
        proc = subprocess.run(
            [
                sys.executable, "-c", _COLD_SNIPPET,
                json.dumps(job.to_dict()), str(spec.seed),
            ],
            env=env, capture_output=True, text=True, timeout=600,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"cold subprocess for {job.name} failed:\n{proc.stderr}"
            )
        latencies[job.name] = time.monotonic() - started
        results[job.name] = json.loads(proc.stdout.strip().splitlines()[-1])
    return {"latencies": latencies, "results": results}


def _run_daemon(spec, libdir: str, scale: int) -> dict:
    """A real serve subprocess, driven through its control socket."""
    from repro.serve import ServeClient
    from repro.serve.client import DaemonUnreachable

    sock = os.path.join(libdir, "serve.sock")
    env = _src_env()
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "--scale", str(scale),
            "serve", "--socket", sock, "--library", libdir,
            "--apps", "top", "gzip", "--guests", "default", "qemu-tsc",
            "--min-workers", "1", "--max-workers", "2", "--warm", "2",
        ],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    client = ServeClient(sock)
    try:
        t0 = time.monotonic()
        deadline = t0 + 300.0
        while True:
            try:
                client.ping()
                break
            except DaemonUnreachable:
                if daemon.poll() is not None:
                    raise RuntimeError(
                        f"serve daemon died:\n{daemon.stdout.read()}"
                    )
                if time.monotonic() > deadline:
                    raise RuntimeError("serve daemon never came up")
                time.sleep(0.1)
        startup = time.monotonic() - t0

        results, latencies = {}, {}
        for job in spec.jobs:
            started = time.monotonic()
            guest = job.guest.name if job.guest is not None else None
            submitted = client.submit(
                job.app, scale=job.scale, attack=job.attack, guest=guest
            )
            response = client.result(submitted["id"], wait=True, timeout=300)
            latencies[submitted["name"]] = time.monotonic() - started
            results[submitted["name"]] = response["result"]
            if submitted["name"] != job.name:
                raise RuntimeError(
                    f"daemon named the job {submitted['name']!r}, batch "
                    f"fleet names it {job.name!r}: derived seeds differ"
                )
        stats = client.stats()
        client.shutdown(drain=True, timeout=60)
        daemon.wait(timeout=60)
        return {
            "startup_seconds": startup,
            "latencies": latencies,
            "results": results,
            "pool": stats["pool"],
        }
    finally:
        if daemon.poll() is None:
            daemon.kill()


def main() -> int:
    from repro.fleet import ProfileLibrary, run_fleet
    from repro.fleet.jobs import prepare_offline_phase
    from repro.fleet.spec import FleetSpec

    scale = _bench_scale()
    spec = FleetSpec.from_dict(_suite(scale))
    print(f"suite: {len(spec.jobs)} jobs, scale {scale}, 2 guest variants")

    print("cold: one fresh subprocess per submission "
          "(interpreter + boot + profile + run)...")
    cold = _run_cold(spec)
    cold_mean = sum(cold["latencies"].values()) / len(spec.jobs)
    print(f"  mean submit->result latency {cold_mean:.2f}s")

    with tempfile.TemporaryDirectory(prefix="serve-lib-") as libdir:
        library = ProfileLibrary(libdir)
        t0 = time.monotonic()
        prepare_offline_phase(library, spec.apps(), scale=scale)
        offline_seconds = time.monotonic() - t0
        print(f"offline phase (once per app, persisted): "
              f"{offline_seconds:.2f}s")

        print("batch fleet reference run...")
        report = run_fleet(spec, library, use_processes=False)
        if report.failed:
            print(f"batch reference had {report.failed} failures")
            return 1
        batch = {
            r["name"]: (r["cycles"], r["syscalls"]) for r in report.results
        }

        print("daemon: warm pools + control socket...")
        served = _run_daemon(spec, libdir, scale)
    warm_mean = sum(served["latencies"].values()) / len(spec.jobs)
    print(f"  startup {served['startup_seconds']:.2f}s (amortized), "
          f"mean submit->result latency {warm_mean:.2f}s")

    status = 0
    mismatches = []
    per_job = {}
    for job in spec.jobs:
        result = served["results"][job.name]
        daemon_score = (result["cycles"], result["syscalls"])
        solo = cold["results"][job.name]
        solo_score = (solo["cycles"], solo["syscalls"])
        batch_score = batch[job.name]
        per_job[job.name] = {
            "ok": result["ok"],
            "daemon": list(daemon_score),
            "batch": list(batch_score),
            "solo": list(solo_score),
            "identical": daemon_score == batch_score == solo_score,
            "cold_latency_seconds": round(cold["latencies"][job.name], 3),
            "daemon_latency_seconds": round(
                served["latencies"][job.name], 3
            ),
        }
        if not result["ok"]:
            mismatches.append(f"{job.name}: job failed: {result['error']}")
        elif not (daemon_score == batch_score == solo_score):
            mismatches.append(
                f"{job.name}: daemon {daemon_score} vs batch {batch_score} "
                f"vs solo {solo_score}"
            )
    if mismatches:
        print("VIRTUAL-CYCLE SCORE DRIFT (daemon changed guest behaviour):")
        for line in mismatches:
            print(f"  {line}")
        status = 1

    speedup = cold_mean / warm_mean if warm_mean else 0.0
    print(f"latency: warm {warm_mean:.2f}s vs cold {cold_mean:.2f}s "
          f"= {speedup:.2f}x (required >= {MIN_SPEEDUP}x)")
    if speedup < MIN_SPEEDUP:
        print(f"speedup {speedup:.2f}x below required {MIN_SPEEDUP}x")
        status = 1

    out = {
        "scale": scale,
        "jobs": len(spec.jobs),
        "cold": {
            "mean_latency_seconds": round(cold_mean, 3),
        },
        "offline_phase_seconds": round(offline_seconds, 2),
        "daemon": {
            "startup_seconds": round(served["startup_seconds"], 2),
            "mean_latency_seconds": round(warm_mean, 3),
            "pool": served["pool"],
        },
        "speedup": round(speedup, 2),
        "scores_identical": not mismatches,
        "per_job": per_job,
        "note": (
            "Cold = the pre-daemon status quo for a one-off request: a "
            "fresh subprocess paying interpreter start, guest boot, "
            "profiling and the benign baseline per submission.  Daemon = "
            "a real 'repro serve' subprocess with warm per-variant "
            "snapshot pools, driven through its control socket; jobs are "
            "submitted and awaited one at a time, so the number is "
            "submit->result latency.  Scores are (virtual cycles, "
            "syscalls executed) and must be bit-identical across daemon, "
            "batch fleet and solo runs."
        ),
    }
    path = _ROOT / "BENCH_serve.json"
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
