#!/usr/bin/env python
"""Record switch-latency results (``BENCH_switching.json``).

Runs the Figure 6 (UnixBench) and Figure 7 (httperf) workloads once with
tracing off -- the same pass ``record_telemetry_baseline.py`` times --
while sampling host wall time of the three operations the PR's caching
layer targets:

* **view build** (``ViewBuilder.build``): CoW sharing should make this
  O(profiled bytes) instead of O(kernel size);
* **view switch** (``ViewSwitcher.switch_kernel_view``): delta installs
  plus selective invalidation should make this a near-pointer-flip;
* **recovery trap** (``RecoveryEngine.handle``): prologue memoization
  and CoW materialization bound the per-trap cost.

The caching layer must be *invisible* to the guest: every virtual-cycle
score is compared against ``BENCH_telemetry.json`` and any difference is
a hard failure (caching may change wall-clock, never guest-visible
behaviour).  The comparison and the >= 1.5x speedup gate only apply when
the run uses the same scale as the recorded baseline; the CI smoke job
runs at ``REPRO_BENCH_SCALE=1`` purely as a regression canary.

Usage::

    PYTHONPATH=src python benchmarks/record_switch_latency.py
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time
from pathlib import Path

#: Required wall-clock speedup over the recorded baseline suite.
MIN_SPEEDUP = 1.5


def _bench_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE", "2"))


def _httperf_rates() -> list:
    raw = os.environ.get("REPRO_FIG7_RATES", "10,40")
    return [int(r) for r in raw.split(",") if r]


def _instrument():
    """Patch the three hot operations to sample host wall time."""
    from repro.core.recovery import RecoveryEngine
    from repro.core.switching import ViewSwitcher
    from repro.core.view_manager import ViewBuilder

    samples = {"view_build": [], "view_switch": [], "recovery": []}
    originals = (
        ViewBuilder.build,
        ViewSwitcher.switch_kernel_view,
        RecoveryEngine.handle,
    )

    def timed(bucket, fn):
        def wrapper(*args, **kwargs):
            t0 = time.perf_counter()
            out = fn(*args, **kwargs)
            samples[bucket].append(time.perf_counter() - t0)
            return out

        return wrapper

    ViewBuilder.build = timed("view_build", originals[0])
    ViewSwitcher.switch_kernel_view = timed("view_switch", originals[1])
    RecoveryEngine.handle = timed("recovery", originals[2])

    def restore():
        ViewBuilder.build = originals[0]
        ViewSwitcher.switch_kernel_view = originals[1]
        RecoveryEngine.handle = originals[2]

    return samples, restore


def _run_suite(scale: int) -> dict:
    os.environ.pop("REPRO_TRACE", None)
    from repro.analysis.similarity import profile_applications
    from repro.bench.httperf import run_httperf_sweep
    from repro.bench.unixbench import run_unixbench

    samples, restore = _instrument()
    try:
        started = time.monotonic()
        configs = profile_applications(scale=scale)
        baseline = run_unixbench(views=0, label="baseline")
        with_views = run_unixbench(views=3, configs=configs, label="3 views")
        points = run_httperf_sweep(configs["apache"], rates=_httperf_rates())
        wall = time.monotonic() - started
    finally:
        restore()

    per_op = {
        name: {
            "count": len(values),
            "median_us": round(statistics.median(values) * 1e6, 3)
            if values
            else None,
            "total_seconds": round(sum(values), 4),
        }
        for name, values in samples.items()
    }
    return {
        "wall_seconds": round(wall, 2),
        "per_op": per_op,
        "unixbench": {
            "baseline_index": baseline.index,
            "three_views_index": with_views.index,
            "normalized_index": with_views.normalized_index(baseline),
            "scores": dict(with_views.scores),
        },
        "httperf": {
            str(p.rate): {
                "baseline": p.baseline_throughput,
                "facechange": p.facechange_throughput,
                "ratio": p.ratio,
            }
            for p in points
        },
    }


def _compare_scores(run: dict, recorded: dict) -> list:
    """Exact comparison of every virtual-cycle score; returns mismatches."""
    mismatches = []
    old = recorded["telemetry_off"]
    for key in ("baseline_index", "three_views_index", "normalized_index"):
        if run["unixbench"][key] != old["unixbench"][key]:
            mismatches.append(
                f"unixbench.{key}: {run['unixbench'][key]!r}"
                f" != {old['unixbench'][key]!r}"
            )
    for name, score in old["unixbench"]["scores"].items():
        got = run["unixbench"]["scores"].get(name)
        if got != score:
            mismatches.append(f"unixbench.scores[{name}]: {got!r} != {score!r}")
    for rate, point in old["httperf"].items():
        got = run["httperf"].get(rate)
        if got is None or any(got[k] != point[k] for k in point):
            mismatches.append(f"httperf[{rate}]: {got!r} != {point!r}")
    return mismatches


def main() -> int:
    scale = _bench_scale()
    result = _run_suite(scale)

    root = Path(__file__).resolve().parent.parent
    baseline_path = root / "BENCH_telemetry.json"
    recorded = json.loads(baseline_path.read_text())
    comparable = recorded.get("scale") == scale

    out = {
        "scale": scale,
        "wall_seconds": result["wall_seconds"],
        "per_op": result["per_op"],
        "unixbench": result["unixbench"],
        "httperf": result["httperf"],
        "note": (
            "Wall-clock of the tracing-off benchmark suite after the "
            "selective-invalidation / CoW / shared-decode-cache layer, "
            "with host-side medians per hot operation.  Scores are "
            "virtual-cycle ratios and must be bit-identical to "
            "BENCH_telemetry.json: caching may only change wall-clock."
        ),
    }
    status = 0
    if comparable:
        baseline_wall = recorded["telemetry_off"]["wall_seconds"]
        speedup = baseline_wall / result["wall_seconds"]
        mismatches = _compare_scores(result, recorded)
        out["baseline_wall_seconds"] = baseline_wall
        out["speedup"] = round(speedup, 2)
        out["scores_identical"] = not mismatches
        print(f"wall: {result['wall_seconds']:.2f}s"
              f" (baseline {baseline_wall:.2f}s, speedup {speedup:.2f}x)")
        if mismatches:
            print("VIRTUAL-CYCLE SCORE DRIFT (caching changed guest behaviour):")
            for line in mismatches:
                print(f"  {line}")
            status = 1
        if speedup < MIN_SPEEDUP:
            print(f"speedup {speedup:.2f}x below required {MIN_SPEEDUP}x")
            status = 1
    else:
        out["baseline_wall_seconds"] = None
        out["speedup"] = None
        out["scores_identical"] = None
        print(f"wall: {result['wall_seconds']:.2f}s"
              f" (scale {scale} != recorded {recorded.get('scale')};"
              " smoke run, no comparison)")
    for name, stats in result["per_op"].items():
        print(f"  {name}: n={stats['count']}"
              f" median={stats['median_us']}us total={stats['total_seconds']}s")

    path = root / "BENCH_switching.json"
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
