#!/usr/bin/env python
"""Record switch-latency results (``BENCH_switching.json``).

Runs the Figure 6 (UnixBench) and Figure 7 (httperf) workloads twice
with tracing off -- once interpreted (``REPRO_JIT=0``) and once under
block translation (the default) -- while sampling host wall time of the
three operations the caching layer targets:

* **view build** (``ViewBuilder.build``): CoW sharing should make this
  O(profiled bytes) instead of O(kernel size);
* **view switch** (``ViewSwitcher.switch_kernel_view``): delta installs
  plus selective invalidation should make this a near-pointer-flip;
* **recovery trap** (``RecoveryEngine.handle``): prologue memoization
  and CoW materialization bound the per-trap cost.

Two invariants are enforced:

* the host-side machinery must be *invisible* to the guest: every
  virtual-cycle score must be **bit-identical between the translated
  and interpreted passes** (checked at any scale), and identical to the
  recorded ``BENCH_telemetry.json`` baseline (checked when the scale
  matches the recording);
* block translation must actually pay for itself: the translated pass
  must finish the suite at least ``MIN_JIT_SPEEDUP`` (2x) faster than
  the interpreted pass, gated at the recorded scale (the CI smoke jobs
  run at ``REPRO_BENCH_SCALE=1`` purely as regression canaries).

Usage::

    PYTHONPATH=src python benchmarks/record_switch_latency.py
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time
from pathlib import Path

#: Required wall-clock speedup of the full machinery (translated pass)
#: over the recorded pre-caching baseline suite.
MIN_SPEEDUP = 1.5
#: Required wall-clock speedup of the translated pass over the
#: interpreted pass of the same suite (the JIT's tentpole gate).
MIN_JIT_SPEEDUP = 2.0


def _bench_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE", "2"))


def _httperf_rates() -> list:
    raw = os.environ.get("REPRO_FIG7_RATES", "10,40")
    return [int(r) for r in raw.split(",") if r]


def _instrument():
    """Patch the three hot operations to sample host wall time."""
    from repro.core.recovery import RecoveryEngine
    from repro.core.switching import ViewSwitcher
    from repro.core.view_manager import ViewBuilder

    samples = {"view_build": [], "view_switch": [], "recovery": []}
    originals = (
        ViewBuilder.build,
        ViewSwitcher.switch_kernel_view,
        RecoveryEngine.handle,
    )

    def timed(bucket, fn):
        def wrapper(*args, **kwargs):
            t0 = time.perf_counter()
            out = fn(*args, **kwargs)
            samples[bucket].append(time.perf_counter() - t0)
            return out

        return wrapper

    ViewBuilder.build = timed("view_build", originals[0])
    ViewSwitcher.switch_kernel_view = timed("view_switch", originals[1])
    RecoveryEngine.handle = timed("recovery", originals[2])

    def restore():
        ViewBuilder.build = originals[0]
        ViewSwitcher.switch_kernel_view = originals[1]
        RecoveryEngine.handle = originals[2]

    return samples, restore


def _run_suite(scale: int, jit: bool) -> dict:
    os.environ.pop("REPRO_TRACE", None)
    os.environ["REPRO_JIT"] = "1" if jit else "0"
    from repro.analysis.similarity import profile_applications
    from repro.bench.httperf import run_httperf_sweep
    from repro.bench.unixbench import run_unixbench

    samples, restore = _instrument()
    try:
        started = time.monotonic()
        configs = profile_applications(scale=scale)
        baseline = run_unixbench(views=0, label="baseline")
        with_views = run_unixbench(views=3, configs=configs, label="3 views")
        points = run_httperf_sweep(configs["apache"], rates=_httperf_rates())
        wall = time.monotonic() - started
    finally:
        restore()
        os.environ.pop("REPRO_JIT", None)

    per_op = {
        name: {
            "count": len(values),
            "median_us": round(statistics.median(values) * 1e6, 3)
            if values
            else None,
            "total_seconds": round(sum(values), 4),
        }
        for name, values in samples.items()
    }
    return {
        "wall_seconds": round(wall, 2),
        "per_op": per_op,
        "unixbench": {
            "baseline_index": baseline.index,
            "three_views_index": with_views.index,
            "normalized_index": with_views.normalized_index(baseline),
            "scores": dict(with_views.scores),
        },
        "httperf": {
            str(p.rate): {
                "baseline": p.baseline_throughput,
                "facechange": p.facechange_throughput,
                "ratio": p.ratio,
            }
            for p in points
        },
    }


def _compare_scores(run: dict, old: dict, tag: str) -> list:
    """Exact comparison of every virtual-cycle score; returns mismatches."""
    mismatches = []
    for key in ("baseline_index", "three_views_index", "normalized_index"):
        if run["unixbench"][key] != old["unixbench"][key]:
            mismatches.append(
                f"{tag} unixbench.{key}: {run['unixbench'][key]!r}"
                f" != {old['unixbench'][key]!r}"
            )
    for name, score in old["unixbench"]["scores"].items():
        got = run["unixbench"]["scores"].get(name)
        if got != score:
            mismatches.append(
                f"{tag} unixbench.scores[{name}]: {got!r} != {score!r}"
            )
    for rate, point in old["httperf"].items():
        got = run["httperf"].get(rate)
        if got is None or any(got[k] != point[k] for k in point):
            mismatches.append(f"{tag} httperf[{rate}]: {got!r} != {point!r}")
    return mismatches


def main() -> int:
    scale = _bench_scale()
    interp = _run_suite(scale, jit=False)
    result = _run_suite(scale, jit=True)

    root = Path(__file__).resolve().parent.parent
    baseline_path = root / "BENCH_telemetry.json"
    recorded = json.loads(baseline_path.read_text())
    comparable = recorded.get("scale") == scale

    # Hard gate at every scale: translation must be invisible to the
    # guest -- every score identical between the two passes.
    jit_mismatches = _compare_scores(result, interp, "jit-vs-interp")
    jit_speedup = interp["wall_seconds"] / result["wall_seconds"]

    out = {
        "scale": scale,
        "wall_seconds": result["wall_seconds"],
        "interp_wall_seconds": interp["wall_seconds"],
        "jit_speedup": round(jit_speedup, 2),
        "jit_scores_identical": not jit_mismatches,
        "per_op": result["per_op"],
        "unixbench": result["unixbench"],
        "httperf": result["httperf"],
        "note": (
            "Wall-clock of the tracing-off benchmark suite with block "
            "translation on (primary) and off (interp_wall_seconds).  "
            "Scores are virtual-cycle ratios and must be bit-identical "
            "between the two passes and to BENCH_telemetry.json: the "
            "host-side machinery may only change wall-clock."
        ),
    }
    status = 0
    print(
        f"wall: jit {result['wall_seconds']:.2f}s /"
        f" interp {interp['wall_seconds']:.2f}s"
        f" (jit speedup {jit_speedup:.2f}x)"
    )
    if jit_mismatches:
        print("VIRTUAL-CYCLE SCORE DRIFT (translation changed guest behaviour):")
        for line in jit_mismatches:
            print(f"  {line}")
        status = 1
    if comparable:
        baseline_wall = recorded["telemetry_off"]["wall_seconds"]
        speedup = baseline_wall / result["wall_seconds"]
        mismatches = _compare_scores(
            result, recorded["telemetry_off"], "vs-recorded"
        )
        out["baseline_wall_seconds"] = baseline_wall
        out["speedup"] = round(speedup, 2)
        out["scores_identical"] = not mismatches
        print(
            f"recorded baseline {baseline_wall:.2f}s,"
            f" speedup {speedup:.2f}x"
        )
        if mismatches:
            print("VIRTUAL-CYCLE SCORE DRIFT (vs recorded baseline):")
            for line in mismatches:
                print(f"  {line}")
            status = 1
        if speedup < MIN_SPEEDUP:
            print(f"speedup {speedup:.2f}x below required {MIN_SPEEDUP}x")
            status = 1
        if jit_speedup < MIN_JIT_SPEEDUP:
            print(
                f"jit speedup {jit_speedup:.2f}x below required"
                f" {MIN_JIT_SPEEDUP}x"
            )
            status = 1
    else:
        out["baseline_wall_seconds"] = None
        out["speedup"] = None
        out["scores_identical"] = None
        print(
            f"scale {scale} != recorded {recorded.get('scale')}:"
            " smoke run, no baseline comparison or speedup gate"
        )
    for name, stats in result["per_op"].items():
        print(f"  {name}: n={stats['count']}"
              f" median={stats['median_us']}us total={stats['total_seconds']}s")

    path = root / "BENCH_switching.json"
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
