"""Table II: the security evaluation against 16 user/kernel malware.

Every sample is run against its host application's per-app kernel view
and against the union ("system-wide minimization") view.  The paper's
claims regenerated here:

* FACE-CHANGE detects all 16 attacks through kernel code recovery;
* the union view misses every user-level attack whose payload reuses
  kernel code some other application legitimizes (case studies I-III
  explicitly), catching only the rootkits' new module code;
* KBeast's provenance contains UNKNOWN (hidden-module) frames, Figure 5.
"""

from __future__ import annotations

from repro.analysis.detection import evaluate_attack
from repro.malware import ALL_ATTACKS, ROOTKIT_ATTACKS, USER_LEVEL_ATTACKS


def _evaluate_all(app_configs):
    return [evaluate_attack(a, app_configs, scale=3) for a in ALL_ATTACKS]


def test_table2_security_evaluation(benchmark, app_configs):
    results = benchmark.pedantic(
        _evaluate_all, args=(app_configs,), rounds=1, iterations=1
    )

    print()
    print("=" * 110)
    print("Table II: Results of Security Evaluation Against a Spectrum of "
          "User/Kernel Malware")
    print("=" * 110)
    header = (
        f"{'Name':<14}{'Infection Method':<46}{'Host':<9}"
        f"{'FACE-CHANGE':<13}{'Union view':<12}{'Evidence'}"
    )
    print(header)
    print("-" * 110)
    for r in results:
        fc = "DETECTED" if r.detected_per_app else "missed"
        un = "detected" if r.detected_union else "missed"
        extra = " +UNKNOWN frames" if r.unknown_frames else ""
        sample = ", ".join(r.evidence[:3])
        print(
            f"{r.name:<14}{r.infection_method:<46}{r.host_app:<9}"
            f"{fc:<13}{un:<12}{len(r.evidence)} fns ({sample}...){extra}"
        )
    per_app = sum(r.detected_per_app for r in results)
    union = sum(r.detected_union for r in results)
    print("-" * 110)
    print(f"FACE-CHANGE detections: {per_app}/{len(results)}   "
          f"union-view detections: {union}/{len(results)}")
    print("paper: FACE-CHANGE detects all 16; union misses user-level "
          "attacks that reuse other apps' kernel code")

    by_name = {r.name: r for r in results}

    # the headline: FACE-CHANGE detects every sample
    assert all(r.detected_per_app for r in results)

    # the union view misses every user-level attack...
    for attack in USER_LEVEL_ATTACKS:
        assert not by_name[attack.name].detected_union, attack.name
    # ...while the rootkits' new module code is caught even by the union
    for attack in ROOTKIT_ATTACKS:
        assert by_name[attack.name].detected_union, attack.name

    # case study I evidence: Figure 4's UDP chains
    injectso = by_name["Injectso"]
    assert "inet_create" in injectso.evidence
    assert "udp_recvmsg" in injectso.evidence

    # case study IV: hidden-module UNKNOWN frames (Figure 5)
    assert by_name["KBeast"].unknown_frames
