#!/usr/bin/env python
"""Record metrics-recorder overhead results (``BENCH_metrics.json``).

Runs the serve-smoke job suite through two in-process daemons that
differ only in observability:

* **metrics off** -- ``metrics_interval=None``: no recorder, no
  sampler thread, no HTTP listener (the PR-8 baseline);
* **metrics on** -- an aggressive 50 ms sampling cadence, per-tenant
  SLO tracking, the default alert-rule set and the Prometheus HTTP
  listener on an ephemeral port -- strictly more work than the
  shipped 1 s default.

Both daemons run one worker over a deliberately narrow queue
(``max_queue_depth=5``) so piling the suite up saturates the queue and
the ``queue-saturation`` alert must fire while jobs drain, then
resolve before shutdown.

Three hard gates:

* every virtual-cycle score ``(cycles, syscalls)`` must be
  **bit-identical** with the recorder on and off -- sampling reads
  only snapshot paths, never the running guest;
* submit->drain wall clock with metrics on must stay within
  ``REPRO_METRICS_WALL_GATE`` (default 1.10, i.e. <= 10% overhead;
  0.5 s absolute grace at smoke scale) of the metrics-off run;
* a live HTTP scrape must expose the queue / pool / tenant / alert
  series, and ``queue-saturation`` must both fire and resolve.

Usage::

    PYTHONPATH=src python benchmarks/record_metrics_overhead.py

``REPRO_BENCH_SCALE`` (default 2) sets the workload scale.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

#: Allowed wall-clock ratio (on / off); env-overridable for noisy CI.
WALL_GATE = float(os.environ.get("REPRO_METRICS_WALL_GATE", "1.10"))

#: Absolute grace on top of the ratio -- at smoke scale the whole run
#: is a few seconds and scheduler jitter alone can exceed 10%.
WALL_GRACE_SECONDS = 0.5

#: Prometheus series the live scrape must contain.
REQUIRED_SERIES = (
    "repro_serve_queue_depth",
    "repro_serve_queue_utilization",
    "repro_serve_pool_warm",
    "repro_serve_tenant_charged_cycles",
    "repro_serve_alert_state",
)

_ROOT = Path(__file__).resolve().parent.parent


def _bench_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE", "2"))


def _suite(scale: int) -> list:
    """Three rounds of the serve-smoke mix (2 apps + 1 attack across 2
    guest variants).  15 jobs through a 5-deep queue with one worker
    keep the queue pinned at the admission cap for the whole drain, so
    the queue-saturation debounce (2 consecutive breach samples) is
    guaranteed to trip even at smoke scale."""
    mix = [
        {"app": "top", "scale": scale},
        {"app": "gzip", "scale": scale},
        {"app": "top", "scale": scale, "attack": "Injectso"},
        {"app": "top", "scale": scale, "guest": "qemu-tsc"},
        {"app": "gzip", "scale": scale, "guest": "qemu-tsc"},
    ]
    return [dict(job) for _ in range(3) for job in mix]


def _run_pass(libdir: str, scale: int, metrics: bool) -> dict:
    """One daemon pass over the suite; returns scores + wall clock."""
    from repro.fleet import ProfileLibrary
    from repro.serve import ServeClient, ServeDaemon
    from repro.serve.client import ServeClientError

    sock = os.path.join(libdir, f"metrics-{'on' if metrics else 'off'}.sock")
    daemon = ServeDaemon(
        ProfileLibrary(libdir),
        socket_path=sock,
        min_workers=1,
        max_workers=1,
        max_queue_depth=5,
        warm_target=1,
        profile_scale=scale,
        metrics_interval=0.05 if metrics else None,
        metrics_addr="127.0.0.1:0" if metrics else None,
        slo_latency=120.0,
    )
    daemon.start(guests=["default", "qemu-tsc"])
    client = ServeClient(sock)
    out: dict = {}
    try:
        t0 = time.monotonic()
        ids = []
        for job in _suite(scale):
            deadline = time.monotonic() + 60.0
            while True:
                try:
                    ids.append(client.submit(**job)["id"])
                    break
                except ServeClientError:
                    # queue full: the saturation we are trying to
                    # provoke -- refill promptly so the queue stays
                    # pinned at the cap while the worker drains
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.01)
        # Scores are keyed by submission index, not job name: the
        # auto-assigned name counter also burns indices on queue-full
        # rejections, which differ across passes by timing alone.
        results = []
        for job_id in ids:
            response = client.result(job_id, wait=True, timeout=600)
            result = response["result"]
            if not result["ok"]:
                raise RuntimeError(
                    f"{job_id} failed: {result.get('error')}"
                )
            results.append((result["cycles"], result["syscalls"]))
        out["wall_seconds"] = time.monotonic() - t0
        out["results"] = results
        if metrics:
            url = f"http://127.0.0.1:{daemon.metrics_port}/metrics"
            with urllib.request.urlopen(url, timeout=10) as fh:
                out["scrape"] = fh.read().decode("utf-8")
            out["describe"] = daemon.metrics_describe()
        summary = client.shutdown(drain=True, timeout=60)
        if not summary.get("drained"):
            raise RuntimeError("daemon did not drain cleanly")
        if metrics:
            out["alerts"] = [
                t.to_dict() for t in daemon.metrics.alert_history
            ]
        return out
    finally:
        if not daemon.stopped.is_set():
            daemon.shutdown(drain=False, timeout=30)


def main() -> int:
    from repro.fleet import ProfileLibrary
    from repro.fleet.jobs import prepare_offline_phase

    scale = _bench_scale()
    suite = _suite(scale)
    print(f"suite: {len(suite)} jobs, scale {scale}, 2 guest variants")

    status = 0
    with tempfile.TemporaryDirectory(prefix="metrics-lib-") as libdir:
        t0 = time.monotonic()
        prepare_offline_phase(
            ProfileLibrary(libdir), ["gzip", "top"], scale=scale
        )
        print(f"offline phase (shared): {time.monotonic() - t0:.2f}s")

        print("pass 1: metrics off (PR-8 baseline)...")
        off = _run_pass(libdir, scale, metrics=False)
        print(f"  submit->drain wall {off['wall_seconds']:.2f}s")

        print("pass 2: metrics on (50ms cadence + HTTP scrape)...")
        on = _run_pass(libdir, scale, metrics=True)
        print(f"  submit->drain wall {on['wall_seconds']:.2f}s, "
              f"{on['describe']['samples']} samples taken")

    # gate 1: bit-identical virtual-cycle scores (by submission index)
    mismatches = []
    per_job = {}
    for idx, job in enumerate(suite):
        label = "{:02d}:{}".format(
            idx,
            job["app"]
            + ("+" + job["attack"] if job.get("attack") else "")
            + ("@" + job["guest"] if job.get("guest") else ""),
        )
        score_off = tuple(off["results"][idx])
        score_on = tuple(on["results"][idx])
        per_job[label] = {
            "off": list(score_off),
            "on": list(score_on),
            "identical": score_on == score_off,
        }
        if score_on != score_off:
            mismatches.append(f"{label}: on {score_on} vs off {score_off}")
    if mismatches:
        print("VIRTUAL-CYCLE SCORE DRIFT (recorder perturbed the guest):")
        for line in mismatches:
            print(f"  {line}")
        status = 1

    # gate 2: wall-clock overhead
    ratio = (
        on["wall_seconds"] / off["wall_seconds"]
        if off["wall_seconds"] else 0.0
    )
    budget = off["wall_seconds"] * WALL_GATE + WALL_GRACE_SECONDS
    wall_ok = on["wall_seconds"] <= budget
    print(f"wall: on {on['wall_seconds']:.2f}s vs off "
          f"{off['wall_seconds']:.2f}s = {ratio:.3f}x "
          f"(budget {budget:.2f}s, gate {WALL_GATE}x)")
    if not wall_ok:
        print(f"metrics overhead {ratio:.3f}x exceeds the {WALL_GATE}x gate")
        status = 1

    # gate 3: the scrape exposes the catalog and the alert cycled
    missing = [s for s in REQUIRED_SERIES if s not in on["scrape"]]
    if missing:
        print(f"scrape missing required series: {', '.join(missing)}")
        status = 1
    alert_states = {
        (t["rule"], t["state"]) for t in on["alerts"]
    }
    fired = ("queue-saturation", "firing") in alert_states
    resolved = ("queue-saturation", "resolved") in alert_states
    if not (fired and resolved):
        print(f"queue-saturation alert did not cycle: fired={fired} "
              f"resolved={resolved} (transitions: {sorted(alert_states)})")
        status = 1
    else:
        print("queue-saturation alert fired under load and resolved "
              "on drain")

    out = {
        "scale": scale,
        "jobs": len(suite),
        "samples": on["describe"]["samples"],
        "sampling_interval_seconds": 0.05,
        "wall_off_seconds": round(off["wall_seconds"], 3),
        "wall_on_seconds": round(on["wall_seconds"], 3),
        "wall_ratio": round(ratio, 3),
        "wall_gate": WALL_GATE,
        "wall_ok": wall_ok,
        "scores_identical": not mismatches,
        "per_job": per_job,
        "scrape_series_ok": not missing,
        "scrape_missing": missing,
        "alert_fired": fired,
        "alert_resolved": resolved,
        "alert_transitions": on["alerts"],
        "note": (
            "Two in-process serve daemons run the smoke suite over one "
            "worker and a 5-deep queue; the only difference is the "
            "metrics recorder (off vs a 50ms cadence with the default "
            "alert rules, per-tenant SLO quantiles and the Prometheus "
            "HTTP listener).  Scores are (virtual cycles, syscalls "
            "executed) and must be bit-identical: the sampler only "
            "reads snapshot paths, never a running guest.  The narrow "
            "queue forces the queue-saturation rule to fire while jobs "
            "pile up and resolve once the worker drains them."
        ),
    }
    path = _ROOT / "BENCH_metrics.json"
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
