"""Table I: the 12x12 kernel-view similarity matrix.

Regenerates the paper's Section IV-A1 result: per-application kernel
view sizes on the diagonal, pairwise overlap above it, similarity
indices (Equation 1) below it.  The assertions pin the paper's
qualitative claims:

* similarity indices span a wide range (the paper saw 33.6%..86.5%);
* the most dissimilar pair involves ``top`` and ``firefox``;
* the most similar pairs are (eog, totem) and (apache, vsftpd)-class
  pairs of same-category applications.
"""

from __future__ import annotations

from repro.analysis.similarity import SimilarityMatrix, profile_applications
from benchmarks.conftest import bench_scale


def _build(configs):
    return SimilarityMatrix.build(configs)


def test_table1_similarity_matrix(benchmark, app_configs):
    matrix = benchmark.pedantic(
        _build, args=(app_configs,), rounds=1, iterations=1
    )

    print()
    print("=" * 100)
    print("Table I: Similarity Matrix for Applications' Kernel Views")
    print("(diagonal: view size; above: overlap; below: similarity index)")
    print("=" * 100)
    print(matrix.format_table())
    (lo_pair, lo), (hi_pair, hi) = matrix.min_similarity(), matrix.max_similarity()
    print(f"\nrange: {lo * 100:.1f}% ({lo_pair}) .. {hi * 100:.1f}% ({hi_pair})")
    print("paper: 33.6% (top, firefox)   .. 86.5% (eog, totem)")

    # every pair overlaps somewhat (scheduler/interrupt code is shared)
    # but no off-diagonal pair is near-identical to a *different-category*
    # application
    indices = matrix.off_diagonal_indices()
    assert 0.25 < min(indices) < 0.55, "dissimilar apps should share little"
    assert max(indices) > 0.80, "same-category apps should share a lot"

    # the paper's extreme pairs
    assert set(lo_pair) == {"top", "firefox"}
    assert set(hi_pair) == {"eog", "totem"}

    # same-category server pairs are highly similar
    assert matrix.similarity("apache", "vsftpd") > 0.75
    assert matrix.similarity("apache", "mysqld") > 0.70

    # view sizes: top smallest, firefox largest (as in the paper)
    sizes = matrix.sizes
    assert min(sizes, key=sizes.get) == "top"
    assert max(sizes, key=sizes.get) == "firefox"
    # sizes land in the paper's order of magnitude (167KB..443KB)
    assert all(100 * 1024 < s < 600 * 1024 for s in sizes.values())


def test_section2_motivating_claim(app_configs):
    """Section II-A: 'two distinct applications may share as little as
    ~1/3 of their executed kernel code'."""
    matrix = _build(app_configs)
    _pair, lo = matrix.min_similarity()
    assert lo < 0.50


def test_profiling_is_reproducible(benchmark):
    """Independent profiling sessions produce identical configurations."""
    def profile_top():
        return profile_applications(apps=["top"], scale=bench_scale())["top"]

    first = profile_top()
    second = benchmark.pedantic(profile_top, rounds=1, iterations=1)
    assert first.profile.to_dict() == second.profile.to_dict()
