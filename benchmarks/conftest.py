"""Shared benchmark fixtures.

``REPRO_BENCH_SCALE`` scales workload sizes (default 4); raising it makes
numbers steadier at the cost of wall time.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.similarity import profile_applications


def bench_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE", "4"))


@pytest.fixture(scope="session")
def app_configs():
    """Profiled kernel views for all twelve Table I applications."""
    return profile_applications(scale=bench_scale())
