#!/usr/bin/env python
"""Record the guest variant matrix results (``BENCH_matrix.json``).

The declarative :class:`repro.guest.config.GuestConfig` refactor
replaced the hard-coded kernel build; this benchmark is its safety net
plus the proof that the variant matrix actually works:

* **bit-identity gate** -- a machine booted from the *default* config
  must reproduce the pre-refactor build exactly: same physical-memory
  image hash, and the same per-job ``(cycles, syscalls)`` scores for a
  reference job suite (values pinned below, recorded before the
  refactor landed);
* **variant gate** -- at least two non-default variants (the paper's
  offline platform ``qemu-tsc`` on the default build, and a 2-vCPU
  ``kvm-pvclock`` guest with the reduced module set) must boot, profile
  one app, run one clean job and one attack job each, and detect the
  attack.  Per-variant config digests and build digests are recorded.

Usage::

    PYTHONPATH=src python benchmarks/record_matrix.py

``REPRO_BENCH_SCALE`` (default 2, CI uses 1) sets the workload scale
for the default-build reference jobs; variant jobs always run at
scale 1 (they gate boot + detection, not workload behaviour).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent

#: SHA-256 over the default build's frozen physical frames (sorted by
#: host frame number), recorded from the pre-refactor hard-coded build.
DEFAULT_IMAGE_SHA = (
    "7cfbf8ba4e9e5abe353d9c53dbecb2a7d79b3b5ff41d2004b2a8db1c072c7183"
)
#: Frame count of that image.
DEFAULT_FRAME_COUNT = 157

#: ``(cycles, syscalls)`` per reference job, keyed ``"{scale}:{name}"``,
#: recorded on the pre-refactor hard-coded build.  The default config
#: must reproduce every one bit-identically.
REFERENCE_SCORES = {
    "1:top#0": [632089, 24],
    "1:gzip#0": [1804592, 23],
    "1:top+Injectso#0": [2205348, 29],
    "2:top#0": [2006437, 38],
    "2:gzip#0": [1407005, 31],
    "2:top+Injectso#0": [2406252, 43],
}

#: Non-default variants the matrix gate sweeps: the paper's offline
#: profiling platform (same kernel build, tsc clocksource) and an SMP
#: guest built without the e1000 module (so its attack must be one that
#: does not touch the network path).
MATRIX_VARIANTS = ["qemu-tsc", "smp2-nonet"]
MATRIX_APP = "top"
MATRIX_ATTACK = "Adore-ng"


def _bench_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE", "2"))


def _image_sha(machine) -> "tuple[str, int]":
    """Hash the booted machine's physical frames (order-independent)."""
    frames = machine.physmem.freeze_frames()
    digest = hashlib.sha256()
    for hpfn in sorted(frames):
        digest.update(hpfn.to_bytes(8, "little"))
        digest.update(frames[hpfn])
    return digest.hexdigest(), len(frames)


def _run_reference_jobs(scale: int) -> "tuple[dict, list]":
    """Default-build jobs whose scores must equal the pinned values."""
    from repro.fleet.jobs import profile_app_offline, run_job_on_fresh_machine
    from repro.fleet.spec import FleetJob

    jobs = [
        FleetJob(app="top", scale=scale, name="top#0"),
        FleetJob(app="gzip", scale=scale, name="gzip#0"),
        FleetJob(
            app="top", scale=scale, attack="Injectso", name="top+Injectso#0"
        ),
    ]
    records = {
        app: profile_app_offline(app, scale=scale)
        for app in sorted({job.app for job in jobs})
    }
    per_job = {}
    mismatches = []
    for job in jobs:
        result = run_job_on_fresh_machine(job, records[job.app])
        expected = REFERENCE_SCORES.get(f"{scale}:{job.name}")
        got = [result.cycles, result.syscalls]
        per_job[job.name] = {
            "ok": result.ok,
            "score": got,
            "expected": expected,
            "identical": bool(result.ok and got == expected),
        }
        if not result.ok:
            mismatches.append(f"{job.name}: job failed: {result.error}")
        elif expected is None:
            mismatches.append(
                f"{job.name}: no pinned reference for scale {scale}"
            )
        elif got != expected:
            mismatches.append(
                f"{job.name}: default build scored {got}, "
                f"pre-refactor build scored {expected}"
            )
    return per_job, mismatches


def _run_variant(name: str) -> "tuple[dict, list]":
    """Boot one non-default variant, profile, run clean + attack jobs."""
    from repro.fleet.jobs import profile_app_offline, run_job_on_fresh_machine
    from repro.fleet.spec import FleetJob
    from repro.guest import boot_machine
    from repro.guest.config import resolve_guest

    config = resolve_guest(name)
    problems = []
    machine = boot_machine(config=config)
    booted = machine.runtime is not None
    if not booted:
        problems.append(f"{name}: failed to boot")
    record = profile_app_offline(MATRIX_APP, scale=1, guest=config)
    jobs = [
        FleetJob(app=MATRIX_APP, scale=1, guest=config),
        FleetJob(app=MATRIX_APP, scale=1, attack=MATRIX_ATTACK, guest=config),
    ]
    rows = {}
    for job in jobs:
        result = run_job_on_fresh_machine(job, record)
        label = f"{job.identity()}"
        rows[label] = {
            "ok": result.ok,
            "score": [result.cycles, result.syscalls],
            "detected": result.detected,
        }
        if not result.ok:
            problems.append(f"{name}: {label} failed: {result.error}")
        elif job.attack and result.detected is not True:
            problems.append(f"{name}: {label} did not detect {job.attack}")
    return {
        "label": config.label(),
        "digest": config.digest(),
        "build_digest": config.build_digest(),
        "platform": config.platform,
        "vcpus": config.vcpus,
        "modules": list(config.modules),
        "booted": booted,
        "profile_pinned_to": record.guest_digest,
        "jobs": rows,
    }, problems


def main() -> int:
    from repro.guest import boot_machine
    from repro.guest.config import DEFAULT_GUEST_CONFIG

    scale = _bench_scale()
    status = 0

    print("gate 1: default config reproduces the pre-refactor build...")
    machine = boot_machine()
    image_sha, frame_count = _image_sha(machine)
    image_ok = (
        image_sha == DEFAULT_IMAGE_SHA and frame_count == DEFAULT_FRAME_COUNT
    )
    print(f"  image {image_sha[:16]}... ({frame_count} frames) "
          f"{'== pre-refactor' if image_ok else 'DRIFTED'}")
    if not image_ok:
        print(f"  expected {DEFAULT_IMAGE_SHA[:16]}... "
              f"({DEFAULT_FRAME_COUNT} frames)")
        status = 1

    per_job, mismatches = _run_reference_jobs(scale)
    for name, row in sorted(per_job.items()):
        mark = "ok" if row["identical"] else "DRIFTED"
        print(f"  {name:<20} {row['score']} {mark}")
    if mismatches:
        print("DEFAULT BUILD DRIFT (the refactor changed guest behaviour):")
        for line in mismatches:
            print(f"  {line}")
        status = 1

    print("gate 2: non-default variants boot, profile, run, detect...")
    variants = {}
    for name in MATRIX_VARIANTS:
        row, problems = _run_variant(name)
        variants[name] = row
        print(f"  {name:<12} digest={row['digest'][:12]} "
              f"build={row['build_digest'][:12]} "
              f"platform={row['platform']} vcpus={row['vcpus']}")
        for label, job in sorted(row["jobs"].items()):
            extra = "  detected" if job["detected"] else ""
            print(f"    {label:<24} ok={job['ok']} "
                  f"score={job['score']}{extra}")
        if problems:
            for line in problems:
                print(f"  VARIANT FAILURE: {line}")
            status = 1

    out = {
        "scale": scale,
        "default": {
            "digest": DEFAULT_GUEST_CONFIG.digest(),
            "build_digest": DEFAULT_GUEST_CONFIG.build_digest(),
            "image_sha": image_sha,
            "frame_count": frame_count,
            "image_identical": image_ok,
            "scores_identical": not mismatches,
            "per_job": per_job,
        },
        "variants": variants,
        "note": (
            "Gate 1 pins the declarative default GuestConfig to the "
            "pre-refactor hard-coded build: identical physical-memory "
            "image hash and identical (virtual cycles, syscalls) scores "
            "for the reference jobs.  Gate 2 sweeps non-default variants "
            "(qemu-tsc offline platform; 2-vCPU reduced-module build): "
            "each must boot, take a profile pinned to its build digest, "
            "run one clean and one infected job, and detect the attack."
        ),
    }
    path = _ROOT / "BENCH_matrix.json"
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
