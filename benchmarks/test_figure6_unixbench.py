"""Figure 6: normalized UnixBench scores vs number of loaded views.

Reproduces Section IV-B1: a baseline suite run without FACE-CHANGE, then
runs with 1..11 kernel views loaded while their applications stay
resident.  The paper's claims regenerated:

* enabling FACE-CHANGE costs roughly 5-7% of whole-system performance
  (we assert the 2%..12% band to absorb simulator noise);
* adding further kernel views has trivial impact;
* the only sharply degraded subtest is Pipe-based Context Switching
  (FACE-CHANGE traps every context switch).
"""

from __future__ import annotations

import os

from repro.bench.unixbench import RESIDENT_APPS, run_unixbench

#: view counts measured; set REPRO_FIG6_FULL=1 for the paper's full 1..11
_QUICK_POINTS = (1, 3, 6, 11)


def _view_points():
    if os.environ.get("REPRO_FIG6_FULL"):
        return tuple(range(1, len(RESIDENT_APPS) + 1))
    return _QUICK_POINTS


def test_figure6_unixbench(benchmark, app_configs):
    points = _view_points()

    def run_all():
        baseline = run_unixbench(0, label="baseline")
        runs = [run_unixbench(k, app_configs) for k in points]
        return baseline, runs

    baseline, runs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("=" * 100)
    print("Figure 6: Normalized System Performance Results from UnixBench")
    print("(1.0 = FACE-CHANGE disabled; paper: 5-7% overall overhead)")
    print("=" * 100)
    header = f"{'subtest':<32}" + "".join(
        f"{f'{k} views':>10}" for k in points
    )
    print(header)
    for name in baseline.scores:
        row = f"{name:<32}"
        for run in runs:
            row += f"{run.normalized(baseline)[name]:>10.3f}"
        print(row)
    print("-" * 100)
    indices = [run.normalized_index(baseline) for run in runs]
    print(f"{'normalized index':<32}" + "".join(f"{i:>10.3f}" for i in indices))

    # whole-system overhead in the paper's band (with simulator slack)
    for index in indices:
        assert 0.88 < index < 0.98, indices

    # additional views have trivial impact: the spread across view
    # counts is far smaller than the enable-FACE-CHANGE cost itself
    assert max(indices) - min(indices) < 0.05

    # Pipe-based Context Switching is the worst subtest in every run
    for run in runs:
        normalized = run.normalized(baseline)
        worst = min(normalized, key=normalized.get)
        assert worst == "Pipe-based Context Switching", normalized
        assert normalized[worst] < 0.85

    # everything that doesn't context switch heavily is barely affected
    for run in runs:
        normalized = run.normalized(baseline)
        for name in ("Dhrystone 2", "Whetstone", "File Copy 1024",
                     "System Call Overhead"):
            assert normalized[name] > 0.90, (name, normalized[name])
