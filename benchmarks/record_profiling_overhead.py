#!/usr/bin/env python
"""Record sampling-profiler overhead gates (``BENCH_profiling.json``).

Three measurements:

1. **Bit-identity** -- the Figure 6 (UnixBench) and Figure 7 (httperf)
   workloads run twice, instrumentation off and instrumentation on
   (``REPRO_SAMPLE_INTERVAL`` installs the sampling profiler on every
   FACE-CHANGE machine; ``REPRO_PROBE_FUNCS`` arms observer probes).
   The sampler reads vCPU state at virtual-cycle crossings but charges
   nothing, and probes are observer trap entries (zero exit cycles), so
   every virtual-cycle score must be **exactly** equal across the two
   passes -- not within a tolerance.
2. **Wall-clock gate** -- sampling and backtracing cost host time; the
   instrumented pass must stay within ``REPRO_PROFILING_WALL_GATE``
   (default 1.15x) of the uninstrumented pass.
3. **Determinism + flame sanity** -- two sampled ``find_pipe`` runs with
   the same seed must render byte-identical flame graphs, and the top-N
   function table must surface the vfs/pipe hot path the workload
   actually exercises.

Usage::

    PYTHONPATH=src python benchmarks/record_profiling_overhead.py

``REPRO_BENCH_SCALE`` (default 2) bounds wall time;
``REPRO_FIG7_RATES`` narrows the httperf sweep.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Functions armed as probes during the instrumented pass.  Both sit on
#: hot paths of the benchmark workloads, so the bit-identity gate also
#: proves that *firing* probes (not just armed ones) cost zero cycles.
PROBE_FUNCS = "vfs_read,pipe_write"

#: Functions the find_pipe top table must surface (any overlap passes).
EXPECTED_HOT = {
    "d_lookup", "link_path_walk", "vfs_read", "vfs_write",
    "pipe_read", "pipe_write", "generic_permission",
    "ext4_find_entry", "do_filp_open",
}


def _bench_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE", "2"))


def _httperf_rates() -> list:
    raw = os.environ.get("REPRO_FIG7_RATES", "10,40")
    return [int(r) for r in raw.split(",") if r]


def _wall_gate() -> float:
    return float(os.environ.get("REPRO_PROFILING_WALL_GATE", "1.15"))


def _run_suite(instrumented: bool, scale: int) -> dict:
    """One full measurement pass with sampler + probes forced on/off."""
    if instrumented:
        os.environ["REPRO_SAMPLE_INTERVAL"] = "20000"
        os.environ["REPRO_PROBE_FUNCS"] = PROBE_FUNCS
    else:
        os.environ.pop("REPRO_SAMPLE_INTERVAL", None)
        os.environ.pop("REPRO_PROBE_FUNCS", None)

    # imported lazily so each pass sees the right environment from boot
    from repro.analysis.similarity import profile_applications
    from repro.bench.httperf import run_httperf_sweep
    from repro.bench.unixbench import run_unixbench

    started = time.monotonic()
    configs = profile_applications(scale=scale)

    baseline = run_unixbench(views=0, label="baseline")
    with_views = run_unixbench(views=3, configs=configs, label="3 views")
    unixbench = {
        "baseline_index": baseline.index,
        "three_views_index": with_views.index,
        "scores": dict(with_views.scores),
    }

    points = run_httperf_sweep(configs["apache"], rates=_httperf_rates())
    httperf = {
        str(p.rate): {
            "baseline": p.baseline_throughput,
            "facechange": p.facechange_throughput,
            "ratio": p.ratio,
        }
        for p in points
    }

    return {
        "instrumented": instrumented,
        "unixbench": unixbench,
        "httperf": httperf,
        "wall_seconds": round(time.monotonic() - started, 3),
    }


def _scores(suite: dict) -> dict:
    """The flat score map that must be bit-identical across passes."""
    flat = {
        f"unixbench.{name}": score
        for name, score in suite["unixbench"]["scores"].items()
    }
    flat["unixbench.baseline_index"] = suite["unixbench"]["baseline_index"]
    flat["unixbench.three_views_index"] = suite["unixbench"]["three_views_index"]
    for rate, point in suite["httperf"].items():
        flat[f"httperf.{rate}.baseline"] = point["baseline"]
        flat[f"httperf.{rate}.facechange"] = point["facechange"]
    return flat


def _sampled_find_pipe(scale: int, seed: int):
    """One sampled, enforced find_pipe run; returns its SampleProfile."""
    from repro.analysis.similarity import profile_applications
    from repro.apps.base import launch
    from repro.apps.catalog import APP_CATALOG
    from repro.core.facechange import FaceChange
    from repro.guest.machine import boot_machine
    from repro.kernel.runtime import Platform
    from repro.obs.profiling import SamplingProfiler

    config = profile_applications(apps=["find_pipe"], scale=scale)["find_pipe"]
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(config, comm="find_pipe")
    sampler = SamplingProfiler(
        machine,
        view_provider=lambda cpu: fc.switcher.current_index[cpu],
    )
    sampler.install()
    handle = launch(
        machine, "find_pipe", APP_CATALOG["find_pipe"],
        scale=scale, seed=seed,
    )
    handle.run_to_completion(max_cycles=200_000_000_000)
    sampler.uninstall()
    if not handle.finished:
        raise RuntimeError("find_pipe did not finish under the sampler")
    return sampler.profile


def _flame_determinism(scale: int) -> dict:
    """Two same-seed sampled runs: flame output must be byte-identical
    and the top table must name the vfs/pipe hot path."""
    os.environ.pop("REPRO_SAMPLE_INTERVAL", None)
    os.environ.pop("REPRO_PROBE_FUNCS", None)
    seed = 20140623  # DSN 2014
    flames = []
    tops = []
    samples = 0
    for _ in range(2):
        profile = _sampled_find_pipe(scale=max(scale, 2), seed=seed)
        flames.append(profile.render_flame())
        tops.append(profile.function_rows()[:10])
        samples = profile.samples
    top_symbols = [row[0] for row in tops[0]]
    return {
        "seed": seed,
        "samples": samples,
        "flame_deterministic": flames[0] == flames[1],
        "top_deterministic": tops[0] == tops[1],
        "top_symbols": top_symbols,
        "expected_hot_named": sorted(EXPECTED_HOT & set(top_symbols)),
    }


def main() -> int:
    scale = _bench_scale()
    off = _run_suite(instrumented=False, scale=scale)
    on = _run_suite(instrumented=True, scale=scale)
    flame = _flame_determinism(scale)

    off_scores = _scores(off)
    on_scores = _scores(on)
    mismatches = sorted(
        name
        for name in off_scores
        if off_scores[name] != on_scores.get(name)
    )
    wall_ratio = (
        on["wall_seconds"] / off["wall_seconds"] if off["wall_seconds"] else 1.0
    )
    gate = _wall_gate()

    out = {
        "scale": scale,
        "probe_funcs": PROBE_FUNCS,
        "instrumentation_off": off,
        "instrumentation_on": on,
        "bit_identical": not mismatches,
        "score_mismatches": mismatches,
        "wall_ratio_on_over_off": round(wall_ratio, 4),
        "wall_gate": gate,
        "flame": flame,
        "note": (
            "The sampler reads vCPU state at virtual-cycle crossings "
            "and probes are observer trap entries (zero exit cycles), "
            "so instrumented scores must be bit-identical (exact "
            "equality, no tolerance).  The wall ratio is the honest "
            "host-side cost of sampling and backtracing."
        ),
    }
    path = REPO_ROOT / "BENCH_profiling.json"
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    print(f"scores compared: {len(off_scores)}; mismatches: {len(mismatches)}")
    print(
        f"wall: off {off['wall_seconds']}s, on {on['wall_seconds']}s "
        f"(ratio {wall_ratio:.3f}, gate {gate})"
    )
    print(
        f"flame: {flame['samples']} samples, "
        f"deterministic={flame['flame_deterministic']}, "
        f"hot path named: {flame['expected_hot_named']}"
    )

    ok = True
    if mismatches:
        print(f"FAIL: instrumentation changed virtual-cycle scores: "
              f"{mismatches}")
        ok = False
    if wall_ratio > gate:
        print(f"FAIL: profiling wall overhead {wall_ratio:.3f} > gate {gate}")
        ok = False
    if not flame["flame_deterministic"] or not flame["top_deterministic"]:
        print("FAIL: same-seed sampled runs rendered different flame output")
        ok = False
    if not flame["expected_hot_named"]:
        print(
            "FAIL: find_pipe top table named none of the vfs/pipe hot "
            f"path: {flame['top_symbols']}"
        )
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
