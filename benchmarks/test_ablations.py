"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables one FACE-CHANGE mechanism and measures what the
paper's design argument predicts:

* **whole-function loading** (III-B1): loading raw basic blocks instead
  of whole functions multiplies recovery traps (and risks split-UD2
  fragments at odd range boundaries);
* **deferred switch at resume_userspace** (III-B2): switching inside
  the context switch doubles EPT work for kernel-bound wakeups;
* **same-view skip** (III-B2): without it, every context switch pays an
  EPT reload even between processes sharing a view;
* **instant recovery** (III-B3): covered by the cross-view integration
  test; here we count that enabling it costs nothing when unused.
"""

from __future__ import annotations

from repro.core.facechange import FaceChange
from repro.guest.machine import boot_machine
from repro.kernel.objects import Compute, Syscall
from repro.kernel.runtime import Platform

Sys = Syscall


def top_workload(iters=12):
    def driver():
        tty = yield Sys("open", path="/dev/tty1")
        for _ in range(iters):
            fd = yield Sys("open", path="/proc/stat")
            yield Sys("read", fd=fd, count=2048)
            yield Sys("close", fd=fd)
            yield Sys("write", fd=tty, count=512)
            yield Compute(300_000)
            yield Sys("nanosleep", cycles=100_000)
    return driver


def run_with(config, widen=True, defer=True, skip_same=True, instances=1):
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine, widen_views=widen)
    fc.enable()
    fc.switcher.defer_to_resume = defer
    fc.switcher.skip_same_view = skip_same
    fc.load_view(config, comm="top")
    tasks = [machine.spawn("top", top_workload()) for _ in range(instances)]
    machine.run(
        until=lambda: all(t.finished for t in tasks),
        max_cycles=240_000_000_000,
    )
    assert all(t.finished for t in tasks)
    return machine, fc


def test_ablation_whole_function_relaxation(benchmark, app_configs):
    """The paper's rationale for loading whole functions (III-B1):

    1. adjacent same-function code is likely needed, so raw blocks mean
       more recovery traps;
    2. raw ranges can start/end at odd addresses, leaving *fragmented*
       UD2 patterns the processor misinterprets.

    Disabling the relaxation demonstrates both: the guest either crashes
    on a fragmented UD2 (the usual outcome) or at minimum recovers far
    more often.
    """
    from repro.hypervisor.kvm import GuestCrash

    config = app_configs["top"]

    def measure():
        _m1, fc_widened = run_with(config, widen=True)
        try:
            _m2, fc_raw = run_with(config, widen=False)
            return fc_widened, fc_raw.recovery.recoveries, False
        except GuestCrash:
            return fc_widened, None, True

    fc_widened, raw_recoveries, crashed = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print()
    print("Ablation: whole-function loading (III-B1)")
    print(f"  recoveries with relaxation: {fc_widened.recovery.recoveries}")
    if crashed:
        print("  raw basic blocks: GUEST CRASH on a fragmented UD2 "
              "(the hazard the relaxation exists to avoid)")
    else:
        print(f"  recoveries with raw blocks: {raw_recoveries}")
    assert crashed or raw_recoveries > fc_widened.recovery.recoveries


def test_ablation_deferred_switch(benchmark, app_configs):
    config = app_configs["top"]

    def measure():
        _m1, fc_deferred = run_with(config, defer=True)
        _m2, fc_eager = run_with(config, defer=False)
        return fc_deferred, fc_eager

    fc_deferred, fc_eager = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print("Ablation: deferred switch at resume_userspace (III-B2)")
    print(f"  view switches deferred: {fc_deferred.stats.view_switches}"
          f" (resume traps {fc_deferred.stats.resume_traps})")
    print(f"  view switches eager:    {fc_eager.stats.view_switches}")
    # eager switching never uses the resume trap
    assert fc_eager.stats.resume_traps == 0
    assert fc_deferred.stats.resume_traps > 0
    # deferral coalesces switch-in work for kernel-bound schedules, so it
    # never performs more switches than eager switching
    assert fc_deferred.stats.view_switches <= fc_eager.stats.view_switches


def test_ablation_same_view_skip(benchmark, app_configs):
    config = app_configs["top"]

    def measure():
        # two instances of the same application share one view, so
        # top->top context switches can skip the EPT reload entirely
        _m1, fc_skip = run_with(config, skip_same=True, instances=2)
        _m2, fc_noskip = run_with(config, skip_same=False, instances=2)
        return fc_skip, fc_noskip

    fc_skip, fc_noskip = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print("Ablation: same-view switch skip (III-B2)")
    print(f"  EPT switches with skip:    {fc_skip.stats.view_switches} "
          f"(skipped {fc_skip.stats.skipped_switches})")
    print(f"  EPT switches without skip: {fc_noskip.stats.view_switches}")
    assert fc_skip.stats.skipped_switches > 0
    assert (
        fc_noskip.stats.view_switches
        > fc_skip.stats.view_switches
    )


def test_ablation_instant_recovery_is_free_when_unused(benchmark, app_configs):
    """Instant recovery only acts on split-UD2 return targets; a normal
    run (no cross-view stacks) performs zero instant recoveries."""
    config = app_configs["top"]

    def measure():
        return run_with(config)[1]

    fc = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert fc.recovery.instant_recoveries == 0
