#!/usr/bin/env python
"""Record the telemetry-overhead baseline (``BENCH_telemetry.json``).

Runs the Figure 6 (UnixBench) and Figure 7 (httperf) workloads twice --
with trace recording off (the default) and on (``REPRO_TRACE=1``) -- and
writes both score sets plus their ratios to ``BENCH_telemetry.json`` at
the repository root.

Because the benchmarks score *virtual* cycles and telemetry charges no
guest cycles, the enabled/disabled ratio must be exactly 1.0 for every
subtest; the recorded file documents that invariant (and a future change
that accidentally charges guest time for tracing will show up as a
ratio drift here).  Host-side wall time for both modes is recorded too,
as the honest measure of what tracing costs the simulator itself.

Both passes run with block translation pinned off (``REPRO_JIT=0``):
the ``telemetry_off`` wall clock doubles as the interpreter reference
that ``benchmarks/record_switch_latency.py`` gates its speedup against.

Usage::

    PYTHONPATH=src python benchmarks/record_telemetry_baseline.py

``REPRO_BENCH_SCALE`` (default 2 here, smaller than the pytest default
of 4) bounds wall time; ``REPRO_FIG7_RATES`` narrows the httperf sweep.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path


def _bench_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE", "2"))


def _httperf_rates() -> list:
    raw = os.environ.get("REPRO_FIG7_RATES", "10,40")
    return [int(r) for r in raw.split(",") if r]


def _run_suite(tracing: bool, scale: int) -> dict:
    """One full measurement pass with tracing forced on or off."""
    if tracing:
        os.environ["REPRO_TRACE"] = "1"
    else:
        os.environ.pop("REPRO_TRACE", None)
    # Pin block translation off: this file is the *interpreter* reference
    # that BENCH_switching.json's speedup gate compares against, and the
    # tracing on/off ratio must be measured on one fixed execution mode.
    os.environ["REPRO_JIT"] = "0"

    # imported lazily so each pass sees the right environment from boot
    from repro.analysis.similarity import profile_applications
    from repro.bench.httperf import run_httperf_sweep
    from repro.bench.unixbench import run_unixbench

    started = time.monotonic()
    configs = profile_applications(scale=scale)

    baseline = run_unixbench(views=0, label="baseline")
    with_views = run_unixbench(views=3, configs=configs, label="3 views")
    unixbench = {
        "baseline_index": baseline.index,
        "three_views_index": with_views.index,
        "normalized_index": with_views.normalized_index(baseline),
        "scores": dict(with_views.scores),
    }

    points = run_httperf_sweep(configs["apache"], rates=_httperf_rates())
    httperf = {
        str(p.rate): {
            "baseline": p.baseline_throughput,
            "facechange": p.facechange_throughput,
            "ratio": p.ratio,
        }
        for p in points
    }

    return {
        "tracing": tracing,
        "unixbench": unixbench,
        "httperf": httperf,
        "wall_seconds": round(time.monotonic() - started, 2),
    }


def main() -> int:
    scale = _bench_scale()
    off = _run_suite(tracing=False, scale=scale)
    on = _run_suite(tracing=True, scale=scale)

    ratios = {
        "unixbench_index": on["unixbench"]["three_views_index"]
        / off["unixbench"]["three_views_index"],
        "httperf": {
            rate: on["httperf"][rate]["facechange"]
            / off["httperf"][rate]["facechange"]
            for rate in off["httperf"]
        },
    }

    out = {
        "scale": scale,
        "telemetry_off": off,
        "telemetry_on": on,
        "on_over_off": ratios,
        "note": (
            "Scores are virtual-cycle ratios; tracing charges no guest "
            "cycles, so on/off must be 1.0 exactly.  Wall seconds show "
            "the host-side cost of recording."
        ),
    }

    path = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")

    drift = max(
        abs(ratios["unixbench_index"] - 1.0),
        max(abs(r - 1.0) for r in ratios["httperf"].values()),
    )
    print(f"wrote {path}")
    print(f"unixbench index off/on: {off['unixbench']['three_views_index']:.2f}"
          f" / {on['unixbench']['three_views_index']:.2f}")
    print(f"max on/off score drift: {drift:.6f} (acceptance: < 0.02)")
    return 0 if drift < 0.02 else 1


if __name__ == "__main__":
    sys.exit(main())
