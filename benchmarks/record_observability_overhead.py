#!/usr/bin/env python
"""Record flight-recorder overhead gates (``BENCH_observability.json``).

Three measurements:

1. **Bit-identity** -- the Figure 6 (UnixBench) and Figure 7 (httperf)
   workloads run twice, recorder off and recorder on
   (``REPRO_TRACE=1`` + ``REPRO_JOURNAL_DIR`` so every machine journals
   spans and trace events to disk).  Spans read the virtual clock but
   never advance it, so every virtual-cycle score must be **exactly**
   equal across the two passes -- not within a tolerance.
2. **Wall-clock gate** -- journaling costs host time; the recorder-on
   pass must stay within ``REPRO_OBS_WALL_GATE`` (default 1.15x) of the
   recorder-off pass.
3. **Replay** -- a captured-attack scenario (KBeast on bash) records a
   journal; the span trees rebuilt from the journal file must equal the
   trees from the live in-memory records, and at least one chain must
   carry a captured-attack provenance verdict with a full
   exit -> backtrace -> provenance -> recovery structure.  The journal is
   kept as ``observability_attack_journal.jsonl`` (a CI artifact).

Usage::

    PYTHONPATH=src python benchmarks/record_observability_overhead.py

``REPRO_BENCH_SCALE`` (default 2) bounds wall time;
``REPRO_FIG7_RATES`` narrows the httperf sweep.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _bench_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE", "2"))


def _httperf_rates() -> list:
    raw = os.environ.get("REPRO_FIG7_RATES", "10,40")
    return [int(r) for r in raw.split(",") if r]


def _wall_gate() -> float:
    return float(os.environ.get("REPRO_OBS_WALL_GATE", "1.15"))


def _run_suite(recording: bool, scale: int, journal_dir: str) -> dict:
    """One full measurement pass with the flight recorder forced on/off."""
    if recording:
        os.environ["REPRO_TRACE"] = "1"
        os.environ["REPRO_JOURNAL_DIR"] = journal_dir
    else:
        os.environ.pop("REPRO_TRACE", None)
        os.environ.pop("REPRO_JOURNAL_DIR", None)

    # imported lazily so each pass sees the right environment from boot
    from repro.analysis.similarity import profile_applications
    from repro.bench.httperf import run_httperf_sweep
    from repro.bench.unixbench import run_unixbench

    started = time.monotonic()
    configs = profile_applications(scale=scale)

    baseline = run_unixbench(views=0, label="baseline")
    with_views = run_unixbench(views=3, configs=configs, label="3 views")
    unixbench = {
        "baseline_index": baseline.index,
        "three_views_index": with_views.index,
        "scores": dict(with_views.scores),
    }

    points = run_httperf_sweep(configs["apache"], rates=_httperf_rates())
    httperf = {
        str(p.rate): {
            "baseline": p.baseline_throughput,
            "facechange": p.facechange_throughput,
            "ratio": p.ratio,
        }
        for p in points
    }

    return {
        "recording": recording,
        "unixbench": unixbench,
        "httperf": httperf,
        "wall_seconds": round(time.monotonic() - started, 3),
    }


def _scores(suite: dict) -> dict:
    """The flat score map that must be bit-identical across passes."""
    flat = {
        f"unixbench.{name}": score
        for name, score in suite["unixbench"]["scores"].items()
    }
    flat["unixbench.baseline_index"] = suite["unixbench"]["baseline_index"]
    flat["unixbench.three_views_index"] = suite["unixbench"]["three_views_index"]
    for rate, point in suite["httperf"].items():
        flat[f"httperf.{rate}.baseline"] = point["baseline"]
        flat[f"httperf.{rate}.facechange"] = point["facechange"]
    return flat


def _attack_replay(scale: int) -> dict:
    """Record a KBeast capture; prove the journal replays losslessly."""
    os.environ.pop("REPRO_TRACE", None)
    os.environ.pop("REPRO_JOURNAL_DIR", None)
    from repro.analysis.similarity import profile_applications
    from repro.core.facechange import FaceChange
    from repro.guest.machine import boot_machine
    from repro.kernel.runtime import Platform
    from repro.malware import ALL_ATTACKS
    from repro.obs import attack_trees
    from repro.telemetry import build_span_trees, load_journal

    journal_path = REPO_ROOT / "observability_attack_journal.jsonl"
    config = profile_applications(apps=["bash"], scale=scale)["bash"]
    machine = boot_machine(platform=Platform.KVM)
    journal = machine.start_recording(
        path=journal_path,
        keep=True,
        meta={"app": "bash", "attack": "KBeast", "scale": scale},
    )
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(config, comm="bash")
    attack = next(a for a in ALL_ATTACKS if a.name == "KBeast")
    handle = attack.launch(machine, scale=scale)
    machine.run(
        until=lambda: handle.finished,
        max_cycles=machine.cycles + 20_000_000_000,
        step_budget=50_000,
    )
    live_trees = [n.to_dict() for n in build_span_trees(journal.records())]
    machine.stop_recording()

    data = load_journal(journal_path)
    replayed = build_span_trees(data.records)
    replay_equal = [n.to_dict() for n in replayed] == live_trees
    captured = attack_trees(replayed)
    full_chain = any(
        tree.kind == "vmexit"
        and any(
            rec.find("backtrace") and rec.find("provenance")
            for rec in tree.find("recovery")
        )
        for tree in captured
    )
    return {
        "journal": str(journal_path),
        "records": len(data.records),
        "dropped": data.dropped,
        "chains": len(replayed),
        "captured_attack_chains": len(captured),
        "replay_equal": replay_equal,
        "full_attack_chain": full_chain,
    }


def main() -> int:
    scale = _bench_scale()
    with tempfile.TemporaryDirectory(prefix="repro-journals-") as journal_dir:
        off = _run_suite(recording=False, scale=scale, journal_dir=journal_dir)
        on = _run_suite(recording=True, scale=scale, journal_dir=journal_dir)
        journal_files = len(list(Path(journal_dir).glob("*.jsonl")))
    replay = _attack_replay(scale)

    off_scores = _scores(off)
    on_scores = _scores(on)
    mismatches = sorted(
        name
        for name in off_scores
        if off_scores[name] != on_scores.get(name)
    )
    wall_ratio = (
        on["wall_seconds"] / off["wall_seconds"] if off["wall_seconds"] else 1.0
    )
    gate = _wall_gate()

    out = {
        "scale": scale,
        "recorder_off": off,
        "recorder_on": on,
        "bit_identical": not mismatches,
        "score_mismatches": mismatches,
        "journal_files_written": journal_files,
        "wall_ratio_on_over_off": round(wall_ratio, 4),
        "wall_gate": gate,
        "attack_replay": replay,
        "note": (
            "Spans/journaling read the virtual clock but never advance "
            "it, so recorder on/off scores must be bit-identical (exact "
            "equality, no tolerance).  The wall ratio is the honest "
            "host-side cost of journaling."
        ),
    }
    path = REPO_ROOT / "BENCH_observability.json"
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    print(f"scores compared: {len(off_scores)}; mismatches: {len(mismatches)}")
    print(
        f"wall: off {off['wall_seconds']}s, on {on['wall_seconds']}s "
        f"(ratio {wall_ratio:.3f}, gate {gate})"
    )
    print(
        f"attack replay: {replay['captured_attack_chains']} captured-attack "
        f"chains, replay_equal={replay['replay_equal']}, "
        f"full_chain={replay['full_attack_chain']}"
    )

    ok = True
    if mismatches:
        print(f"FAIL: recorder changed virtual-cycle scores: {mismatches}")
        ok = False
    if wall_ratio > gate:
        print(f"FAIL: journaling wall overhead {wall_ratio:.3f} > gate {gate}")
        ok = False
    if not replay["replay_equal"]:
        print("FAIL: journal replay differs from live span trees")
        ok = False
    if not replay["captured_attack_chains"] or not replay["full_attack_chain"]:
        print("FAIL: no full captured-attack chain in the replayed journal")
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
